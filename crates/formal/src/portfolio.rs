//! Parallel verification orchestration: scheduling, budgets and the proof
//! cache.
//!
//! The checker turns every property of a testbench into an independent task
//! on its own cone-of-influence slice (see [`crate::coi`]); this module
//! supplies the machinery that runs those tasks:
//!
//! * [`ParallelOptions`] — the orchestration knobs on
//!   [`crate::checker::CheckOptions`]: worker count (`threads = 1` is the
//!   sequential escape hatch), slicing on/off, an optional per-property time
//!   budget, first-violation cancellation, and an optional [`ProofCache`];
//! * [`run_ordered`] — a self-scheduling worker pool over [`std::thread`]
//!   (no external dependencies): idle workers steal the next property index
//!   from a shared atomic queue head, results land in annotation order, and
//!   a shared cancellation flag stops the fleet early.  Statuses are
//!   deterministic — every engine is single-threaded and runs on an
//!   identical slice regardless of interleaving — so a report assembled
//!   from a parallel run renders byte-identically to a sequential one;
//! * [`ProofCache`] — a process-wide store keyed by *slice fingerprint +
//!   property name*.  Identical cones (buggy/fixed design variants,
//!   repeated bench iterations, properties stamped out by the same
//!   annotation) reuse verdicts instead of re-running engines.  Cache hits
//!   are never trusted blindly where an artifact can be re-checked: PDR
//!   invariants are re-certified against the slice with an independent SAT
//!   check, counterexample/witness traces are replayed through the
//!   two-state simulator, and disk-loaded k-induction verdicts are
//!   re-proven at their recorded depth on first use; entries that fail
//!   validation are evicted and the property is re-verified from scratch.
//!   The cache can spill to disk
//!   ([`ProofCache::open`]/[`ProofCache::flush`]) — only these
//!   re-checkable kinds cross the process boundary.

use crate::aig::Lit;
use crate::coi::Fingerprint;
use crate::model::{BadProperty, Model};
use crate::pdr::Invariant;
use crate::sat::{ClausePool, SolverConfig};
use crate::sim::Simulator;
use crate::trace::Trace;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Orchestration options for a verification run (part of
/// [`crate::checker::CheckOptions`]).
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// Number of worker threads; `0` uses every available core, `1` is the
    /// fully sequential escape hatch.
    pub threads: usize,
    /// Check each property on its cone-of-influence slice instead of the
    /// full compiled model (verdict-preserving; see [`crate::coi`]).
    pub slice: bool,
    /// Run the AIG static-analysis/optimization pass ([`crate::opt`]) on
    /// each property slice before the engine cascade: constant sweeping,
    /// sequential latch sweeping, combinational gate sweeping and dead-node
    /// elimination, all verdict-preserving.  Only applies when `slice` is
    /// on — the `slice: false` escape hatch keeps the exact
    /// pre-orchestrator behaviour, untouched model included.
    pub opt: bool,
    /// Wall-clock budget per property; a property still undecided when its
    /// budget runs out between engine stages reports
    /// [`crate::checker::PropertyStatus::Unknown`] with an explanatory note.
    /// Budgets make outcomes timing-dependent, so the default is `None`.
    pub property_timeout: Option<Duration>,
    /// Raise the shared cancellation flag as soon as any property is
    /// violated; properties not yet started report `Unknown`.  Useful for
    /// bug-hunting sweeps; off by default because it makes reports depend on
    /// scheduling order.
    pub stop_on_violation: bool,
    /// Share verified verdicts across runs keyed by slice fingerprint.
    pub cache: Option<ProofCache>,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: 0,
            slice: true,
            opt: true,
            property_timeout: None,
            stop_on_violation: false,
            cache: None,
        }
    }
}

impl ParallelOptions {
    /// The effective worker count: `threads`, or every available core when
    /// `threads == 0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// Knobs of the clause-sharing SAT portfolio (part of
/// [`crate::checker::CheckOptions`]).
///
/// Hard properties — those that fall through fuzzing, quick BMC, PDR and
/// the explicit engine — are handed to
/// [`crate::bmc::race_safety_budgeted`]: `racers` diverse
/// [`SolverConfig`] variants take deterministic round-robin turns of
/// `quantum` conflicts each, exchanging learnt clauses with LBD ≤
/// `glue_bound` through pools keyed by the property's COI fingerprint
/// (see [`SharedPools`]).  Sharing and racing only ever *strengthen* the
/// search — imported clauses are implied, seeds steer decision order
/// only — so the rendered report is byte-identical with sharing on or
/// off, sequential or parallel, at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingOptions {
    /// Number of portfolio racers on hard properties; `0` or `1`
    /// disables the race (the plain single-configuration solve runs).
    pub racers: usize,
    /// LBD ("glue") bound above which learnt clauses are not shared.
    pub glue_bound: u32,
    /// Conflict budget of one racer turn.
    pub quantum: u64,
    /// Minimum COI state-signature overlap (Jaccard, `0..=1`; see
    /// [`crate::coi::signature_overlap`]) for cross-property seeding: a
    /// task whose cone overlaps an earlier task's cone at least this
    /// much starts with the sibling's phase/activity hints instead of
    /// cold.  `> 1.0` disables seeding.
    pub seed_overlap: f64,
}

impl Default for SharingOptions {
    fn default() -> Self {
        SharingOptions {
            racers: 3,
            glue_bound: 4,
            quantum: 2048,
            seed_overlap: 0.5,
        }
    }
}

impl SharingOptions {
    /// Whether the portfolio race is on (at least two racers).
    pub fn enabled(&self) -> bool {
        self.racers >= 2
    }

    /// A sharing configuration with the race disabled (the ablation
    /// baseline).
    pub fn disabled() -> Self {
        SharingOptions {
            racers: 0,
            ..SharingOptions::default()
        }
    }
}

/// Derives up to four diverse racer configurations from `base`:
/// the base itself, a rapid-restart variant (small Luby base, eager
/// database reduction), a conservative variant (long restarts, no
/// clause minimization) and the MiniSat-era baseline.  Diversity is what
/// makes a portfolio pay: different restart/minimization policies explore
/// different parts of the search tree, and the shared pool lets whichever
/// racer is ahead pull the others along.
pub fn racer_configs(base: SolverConfig, n: usize) -> Vec<SolverConfig> {
    let variants = [
        base,
        SolverConfig {
            restart_base: 30,
            reduce_base: 1000,
            ..base
        },
        SolverConfig {
            restart_base: 400,
            minimize: false,
            ..base
        },
        SolverConfig::baseline(),
    ];
    variants[..n.clamp(1, variants.len())].to_vec()
}

/// Which unrolling family a shared pool serves.  BMC unrollers
/// (initial states constrained) and induction-step unrollers (initial
/// states free) number their variables differently, so their learnt
/// clauses must never mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Pools for the init-constrained BMC unrollings.
    Bmc,
    /// Pools for the init-free induction-step unrollings.
    Step,
}

/// Run-wide learnt-clause pools keyed by COI fingerprint.
///
/// Every unroller built for a given (fingerprint, [`PoolKind`]) pair
/// encodes the same model with the same deterministic construction
/// order, so SAT variable numbers mean the same thing to all of them —
/// clauses transfer verbatim.  The registry hands the *same* pool to
/// repeated races on content-identical cones, so a later race imports
/// the sibling's clauses instead of starting cold.
#[derive(Debug, Default)]
pub struct SharedPools {
    inner: Mutex<HashMap<(Fingerprint, PoolKind), Arc<ClausePool>>>,
}

impl SharedPools {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SharedPools::default()
    }

    /// The pool for one (fingerprint, kind) pair, created with
    /// `glue_bound` on first use.
    pub fn pool(
        &self,
        fingerprint: Fingerprint,
        kind: PoolKind,
        glue_bound: u32,
    ) -> Arc<ClausePool> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            inner
                .entry((fingerprint, kind))
                .or_insert_with(|| Arc::new(ClausePool::new(glue_bound))),
        )
    }

    /// Number of distinct pools created so far.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` when no pool has been created yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Runs `run(i, &items[i])` for every item on up to `threads` workers and
/// returns the results in item order.
///
/// Workers self-schedule from a shared queue head, so long-running
/// properties never block short ones behind a static partition.
///
/// # Cancellation semantics
///
/// When `cancel` is raised, items not yet *started* yield `None`; items
/// whose run already started are never preempted here — they complete
/// normally (or wind down early by observing the flag themselves, e.g.
/// through an [`crate::interrupt::Interrupt`] carrying it) and their
/// results are kept.  A slot is therefore `None` only for "never ran",
/// not "ran and was discarded".
///
/// # Fault containment
///
/// The checker wraps engine work in its own `catch_unwind`, but this pool
/// is the last line of defense: a panic that escapes `run` is caught here
/// so one poisoned item cannot tear down the scope at join time and lose
/// every completed verdict.  The panicking item's slot stays `None`; the
/// result mutex is recovered from poisoning rather than propagating it.
pub(crate) fn run_ordered<T, R, F>(
    items: &[T],
    threads: usize,
    cancel: &AtomicBool,
    telemetry: &crate::telemetry::Telemetry,
    run: F,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    if workers <= 1 {
        // Sequential escape hatch: runs on the calling thread, which is
        // already inside the run's telemetry scope (track 0).
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                if cancel.load(Ordering::Relaxed) {
                    None
                } else {
                    crate::telemetry::gauge(
                        "pool.queue_depth",
                        items.len().saturating_sub(i) as u64,
                    );
                    catch_unwind(AssertUnwindSafe(|| run(i, item))).ok()
                }
            })
            .collect();
    }
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Each pool worker records onto its own telemetry track
                // (a fresh per-worker buffer; no-op when telemetry is off).
                let _telemetry_scope = crate::telemetry::enter(telemetry);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if cancel.load(Ordering::Relaxed) {
                        continue;
                    }
                    crate::telemetry::gauge(
                        "pool.queue_depth",
                        items.len().saturating_sub(i) as u64,
                    );
                    let r = catch_unwind(AssertUnwindSafe(|| run(i, &items[i])));
                    // Recover rather than propagate poisoning: the vector
                    // of `Option` slots is always in a consistent state
                    // (each slot is written exactly once, after its run),
                    // so a panic elsewhere cannot have corrupted it.
                    let mut slots = results.lock().unwrap_or_else(PoisonError::into_inner);
                    if let Ok(r) = r {
                        slots[i] = Some(r);
                    }
                }
            });
        }
    });
    results.into_inner().unwrap_or_else(PoisonError::into_inner)
}

/// Counters describing the effectiveness of a [`ProofCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (after successful re-validation).
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Verdicts stored.
    pub insertions: u64,
    /// Entries evicted because re-validation (invariant certification or
    /// trace replay) failed.
    pub rejected: u64,
    /// Entries loaded from the on-disk spill at open time.
    pub loaded: u64,
}

impl CacheStats {
    /// The counter delta since `earlier` (a snapshot from the same cache):
    /// what one run contributed.  `loaded` is kept absolute — it describes
    /// the open, not the run.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            loaded: self.loaded,
        }
    }
}

/// The key of a cached verdict: the content fingerprint of the checked
/// slice plus the property's full name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub fingerprint: Fingerprint,
    pub property: String,
}

/// A verdict as stored in the cache (artifacts in slice-literal terms).
#[derive(Debug, Clone)]
pub(crate) enum CachedOutcome {
    /// k-induction proof at the recorded depth.
    Induction {
        /// Induction depth.
        depth: usize,
    },
    /// PDR proof; the invariant clauses are re-certified on every hit.
    Invariant {
        /// Invariant clauses over slice latch literals.
        clauses: Vec<Vec<Lit>>,
        /// Frames explored when the proof closed.
        frames: usize,
    },
    /// Explicit-engine (exhaustive reachability) proof.
    Reachability,
    /// Cover target proven unreachable; when PDR produced the proof the
    /// invariant certificate is kept and re-checked on hits.
    Unreachable {
        /// `(clauses, frames)` of the PDR certificate, if one exists.
        certificate: Option<(Vec<Vec<Lit>>, usize)>,
    },
    /// Counterexample; replayed through the simulator on every hit.
    Violated(Trace),
    /// Cover witness; replayed through the simulator on every hit.
    Covered(Trace),
}

/// A cache hit after successful re-validation, in engine terms.
#[derive(Debug, Clone)]
pub(crate) enum CachedVerdict {
    /// k-induction proof.
    Induction {
        /// Induction depth.
        depth: usize,
    },
    /// Re-certified PDR invariant.
    Invariant(Invariant),
    /// Explicit-engine proof.
    Reachability,
    /// Cover target unreachable.
    Unreachable,
    /// Replayed counterexample.
    Violated(Trace),
    /// Replayed cover witness.
    Covered(Trace),
}

/// A stored verdict plus its provenance: entries loaded from the on-disk
/// spill are re-validated more aggressively than entries produced by this
/// process (the spill file is a trust boundary; the in-process store is
/// not).
#[derive(Debug, Clone)]
struct CacheEntry {
    outcome: CachedOutcome,
    /// Loaded from disk and not yet re-validated by this process.
    unvalidated: bool,
}

#[derive(Default)]
struct CacheInner {
    entries: HashMap<CacheKey, CacheEntry>,
    stats: CacheStats,
    /// On-disk spill file (None for a purely in-memory cache).
    path: Option<PathBuf>,
    /// Entries changed since the last flush.
    dirty: bool,
}

/// A process-wide proof cache shared by verification runs (cheaply cloneable
/// handle; clones share the same store).
///
/// A cache opened with [`ProofCache::open`] is backed by a versioned
/// on-disk spill file: entries load at open time (corruption-tolerant — a
/// truncated or garbled file yields the readable prefix, never an error)
/// and [`ProofCache::flush`] writes them back atomically, so repeated
/// CLI/CI invocations reuse proofs across processes.  The spill file is a
/// trust boundary, so only verdict kinds whose artifact can be
/// independently re-checked ever cross it: invariants (re-certified on
/// every hit), traces (replayed on every hit) and induction proofs
/// (re-proven at their recorded depth on the first hit after loading;
/// entries stored by this process stay trusted on the fingerprint match).
/// Parsed artifacts are bounds-checked (depth, clause, cycle and signal
/// caps; invariant literals must name latches of the live model), so an
/// oversized forgery rejects cheaply instead of hanging the re-proof or
/// panicking the encoder.  Verdicts with no re-checkable artifact —
/// explicit-engine reachability and certificate-less unreachability —
/// stay process-local: they are neither written to nor parsed from the
/// spill file.  A stale, garbled or hand-forged file can therefore cost a
/// re-verification but never mislead a report.
///
/// See the module documentation for the validation performed on hits.
#[derive(Clone, Default)]
pub struct ProofCache {
    inner: Arc<Mutex<CacheInner>>,
}

impl fmt::Debug for ProofCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("ProofCache")
            .field("entries", &inner.entries.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl ProofCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ProofCache::default()
    }

    /// Opens a disk-backed cache in `dir` (created if missing), loading any
    /// entries a previous process spilled there.
    ///
    /// Loading is corruption-tolerant: a missing, truncated, garbled or
    /// version-mismatched spill file yields whatever prefix parses cleanly
    /// (possibly nothing) — the cache always opens.  Call
    /// [`ProofCache::flush`] (the checker does so after every run) to write
    /// the current entries back.
    pub fn open(dir: impl AsRef<Path>) -> ProofCache {
        let dir = dir.as_ref();
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join(CACHE_FILE);
        let cache = ProofCache::new();
        {
            let mut inner = cache.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if let Ok(text) = std::fs::read_to_string(&path) {
                inner.entries = parse_cache_file(&text);
                inner.stats.loaded = inner.entries.len() as u64;
            }
            inner.path = Some(path);
        }
        cache
    }

    /// The spill file backing this cache, if it was opened with
    /// [`ProofCache::open`].
    pub fn spill_path(&self) -> Option<PathBuf> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .path
            .clone()
    }

    /// Writes the entries to the on-disk spill file (atomically, via a
    /// temporary file and rename).  A no-op for in-memory caches and when
    /// nothing changed since the last flush.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing or renaming the spill file.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(path) = inner.path.clone() else {
            return Ok(());
        };
        if !inner.dirty {
            return Ok(());
        }
        let mut entries: Vec<(&CacheKey, &CacheEntry)> = inner.entries.iter().collect();
        // Deterministic file contents regardless of hash-map order.
        entries.sort_by(|a, b| {
            (a.0.fingerprint.0, a.0.fingerprint.1, &a.0.property).cmp(&(
                b.0.fingerprint.0,
                b.0.fingerprint.1,
                &b.0.property,
            ))
        });
        let mut text = String::new();
        text.push_str(CACHE_HEADER);
        text.push('\n');
        for (key, entry) in entries {
            // Verdicts without an independently re-checkable artifact are
            // process-local: the spill file is a trust boundary and a hit
            // on these kinds could not be re-validated.
            if matches!(
                entry.outcome,
                CachedOutcome::Reachability | CachedOutcome::Unreachable { certificate: None }
            ) {
                continue;
            }
            render_cache_entry(&mut text, key, &entry.outcome);
        }
        let tmp = path.with_extension("tmp");
        {
            let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            file.write_all(text.as_bytes())?;
            file.flush()?;
        }
        std::fs::rename(&tmp, &path)?;
        inner.dirty = false;
        Ok(())
    }

    /// Number of stored verdicts.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss/insert/reject counters.
    pub fn stats(&self) -> CacheStats {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.entries.clear();
        inner.dirty = true;
    }

    /// Stores a verdict (last write wins).
    pub(crate) fn store(&self, key: CacheKey, outcome: CachedOutcome) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.stats.insertions += 1;
        inner.entries.insert(
            key,
            CacheEntry {
                outcome,
                unvalidated: false,
            },
        );
        inner.dirty = true;
    }

    /// Looks up and re-validates a verdict for a property checked on
    /// `model` with bad/cover literal `target`.
    ///
    /// The entry (if any) was produced on a slice with the same content
    /// fingerprint, so validation failure indicates a hash collision or a
    /// corrupted entry — the entry is evicted and `None` returned so the
    /// property is re-verified from scratch.
    pub(crate) fn lookup(
        &self,
        key: &CacheKey,
        model: &Model,
        target: Lit,
    ) -> Option<CachedVerdict> {
        let entry = {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            match inner.entries.get(key) {
                Some(entry) => entry.clone(),
                None => {
                    inner.stats.misses += 1;
                    return None;
                }
            }
        };
        let unvalidated = entry.unvalidated;
        // Validation runs outside the lock: certification and replay are
        // real engine work and must not serialize the worker pool.
        let verdict = match entry.outcome {
            CachedOutcome::Induction { depth } => {
                // In-process entries are trusted on the fingerprint match
                // (the verdict was computed by this process); disk-loaded
                // entries are re-proven at their recorded depth once.
                if !unvalidated || induction_reproves(model, target, depth) {
                    Some(CachedVerdict::Induction { depth })
                } else {
                    None
                }
            }
            // Process-local kind (never spilled to disk): trusted on the
            // fingerprint match, exactly as before persistence existed.
            CachedOutcome::Reachability => Some(CachedVerdict::Reachability),
            CachedOutcome::Invariant { clauses, frames } => {
                if clauses_fit_model(model, &clauses) {
                    let invariant = Invariant::from_clauses(clauses, frames);
                    if invariant.certify(model, target) {
                        Some(CachedVerdict::Invariant(invariant))
                    } else {
                        None
                    }
                } else {
                    None
                }
            }
            CachedOutcome::Unreachable { certificate } => match certificate {
                None => Some(CachedVerdict::Unreachable),
                Some((clauses, frames)) => {
                    if clauses_fit_model(model, &clauses) {
                        let invariant = Invariant::from_clauses(clauses, frames);
                        if invariant.certify(model, target) {
                            Some(CachedVerdict::Unreachable)
                        } else {
                            None
                        }
                    } else {
                        None
                    }
                }
            },
            CachedOutcome::Violated(trace) => {
                if replay_confirms(model, target, &trace) {
                    Some(CachedVerdict::Violated(trace))
                } else {
                    None
                }
            }
            CachedOutcome::Covered(trace) => {
                if replay_confirms(model, target, &trace) {
                    Some(CachedVerdict::Covered(trace))
                } else {
                    None
                }
            }
        };
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match verdict {
            Some(v) => {
                inner.stats.hits += 1;
                if unvalidated {
                    // The disk-loaded entry survived validation against the
                    // live model: treat it as in-process from here on.
                    if let Some(entry) = inner.entries.get_mut(key) {
                        entry.unvalidated = false;
                    }
                }
                Some(v)
            }
            None => {
                inner.stats.rejected += 1;
                inner.entries.remove(key);
                inner.dirty = true;
                None
            }
        }
    }
}

/// Spill-file name inside the cache directory.
const CACHE_FILE: &str = "proofs.cache";
/// Version header; bump on any format change (older files are ignored,
/// which is safe: the cache is advisory).
const CACHE_HEADER: &str = "autosva-proof-cache v1";
/// Sanity bounds on parsed entries.  Legitimate artifacts sit far below
/// these (induction depths ≤ the configured `max_induction`, traces ≤ the
/// BMC bound, invariants ≤ a few hundred clauses); anything larger is a
/// forged or corrupted entry, and the bound keeps its *rejection* cheap —
/// without it, a huge induction depth would hang the re-proof and a huge
/// clause count would allocate unboundedly before validation could say no.
const MAX_CACHE_DEPTH: usize = 256;
const MAX_CACHE_CLAUSES: usize = 65_536;
const MAX_CACHE_CYCLES: usize = 65_536;
const MAX_CACHE_SIGNALS: usize = 65_536;

/// Percent-escapes a property name so it survives the line-oriented format.
fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape_name(escaped: &str) -> Option<String> {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next()?;
        let lo = chars.next()?;
        let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16).ok()?;
        out.push(byte as char);
    }
    Some(out)
}

fn render_clauses(out: &mut String, clauses: &[Vec<Lit>]) {
    for clause in clauses {
        out.push_str("clause");
        for lit in clause {
            let _ = write!(out, " {}", lit.raw());
        }
        out.push('\n');
    }
}

fn render_trace(out: &mut String, trace: &Trace) {
    let _ = writeln!(out, "{} {}", trace.len(), trace.num_signals());
    for sig in trace.signals() {
        let bits: String = sig
            .values
            .iter()
            .map(|&v| if v { '1' } else { '0' })
            .collect();
        let _ = writeln!(
            out,
            "signal {} {} {}",
            u8::from(sig.is_input),
            bits,
            escape_name(&sig.name)
        );
    }
}

/// Serializes one cache entry into the line-oriented spill format.
fn render_cache_entry(out: &mut String, key: &CacheKey, outcome: &CachedOutcome) {
    let _ = writeln!(
        out,
        "entry {:016x} {:016x} {}",
        key.fingerprint.0,
        key.fingerprint.1,
        escape_name(&key.property)
    );
    match outcome {
        CachedOutcome::Induction { depth } => {
            let _ = writeln!(out, "induction {depth}");
        }
        CachedOutcome::Invariant { clauses, frames } => {
            let _ = writeln!(out, "invariant {frames} {}", clauses.len());
            render_clauses(out, clauses);
        }
        CachedOutcome::Reachability => out.push_str("reachability\n"),
        CachedOutcome::Unreachable { certificate } => match certificate {
            None => out.push_str("unreachable\n"),
            Some((clauses, frames)) => {
                let _ = writeln!(out, "unreachable-cert {frames} {}", clauses.len());
                render_clauses(out, clauses);
            }
        },
        CachedOutcome::Violated(trace) => {
            out.push_str("violated ");
            render_trace(out, trace);
        }
        CachedOutcome::Covered(trace) => {
            out.push_str("covered ");
            render_trace(out, trace);
        }
    }
}

/// Line-cursor over the spill file; every parse helper returns `Option` so
/// any corruption aborts the current entry without panicking.
struct CacheLines<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> CacheLines<'a> {
    fn next(&mut self) -> Option<&'a str> {
        self.lines.next()
    }
}

fn parse_clauses(lines: &mut CacheLines<'_>, count: usize) -> Option<Vec<Vec<Lit>>> {
    let mut clauses = Vec::with_capacity(count);
    for _ in 0..count {
        let line = lines.next()?;
        let mut fields = line.split(' ');
        if fields.next()? != "clause" {
            return None;
        }
        let mut clause = Vec::new();
        for field in fields {
            let raw: u32 = field.parse().ok()?;
            clause.push(Lit::new((raw >> 1) as usize, raw & 1 == 1));
        }
        clauses.push(clause);
    }
    Some(clauses)
}

fn parse_trace(header: &str, lines: &mut CacheLines<'_>) -> Option<Trace> {
    let mut fields = header.split(' ');
    let cycles: usize = fields.next()?.parse().ok()?;
    let num_signals: usize = fields.next()?.parse().ok()?;
    if cycles > MAX_CACHE_CYCLES || num_signals > MAX_CACHE_SIGNALS {
        return None;
    }
    let mut trace = Trace::new(cycles);
    for _ in 0..num_signals {
        let line = lines.next()?;
        let mut fields = line.split(' ');
        if fields.next()? != "signal" {
            return None;
        }
        let is_input = match fields.next()? {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        let bits = fields.next()?;
        let name = unescape_name(fields.next()?)?;
        if bits.len() != cycles || fields.next().is_some() {
            return None;
        }
        for (cycle, bit) in bits.chars().enumerate() {
            let value = match bit {
                '0' => false,
                '1' => true,
                _ => return None,
            };
            trace.record(cycle, &name, value, is_input);
        }
    }
    Some(trace)
}

/// Parses one entry (the `entry` line was already consumed and split into
/// `key`); returns `None` on any malformed line.
fn parse_outcome(lines: &mut CacheLines<'_>) -> Option<CachedOutcome> {
    let line = lines.next()?;
    let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
    match tag {
        "induction" => {
            let depth: usize = rest.parse().ok()?;
            // A forged depth would make the hit-time re-proof arbitrarily
            // expensive; real induction depths are two orders below this.
            if depth > MAX_CACHE_DEPTH {
                return None;
            }
            Some(CachedOutcome::Induction { depth })
        }
        "invariant" | "unreachable-cert" => {
            let mut fields = rest.split(' ');
            let frames: usize = fields.next()?.parse().ok()?;
            let count: usize = fields.next()?.parse().ok()?;
            if count > MAX_CACHE_CLAUSES {
                return None;
            }
            let clauses = parse_clauses(lines, count)?;
            Some(if tag == "invariant" {
                CachedOutcome::Invariant { clauses, frames }
            } else {
                CachedOutcome::Unreachable {
                    certificate: Some((clauses, frames)),
                }
            })
        }
        // "reachability" and certificate-less "unreachable" are never
        // written (process-local kinds, see `flush`); an unknown tag stops
        // the load at the clean prefix, so a forged one cannot smuggle an
        // unvalidatable verdict in.
        "violated" => Some(CachedOutcome::Violated(parse_trace(rest, lines)?)),
        "covered" => Some(CachedOutcome::Covered(parse_trace(rest, lines)?)),
        _ => None,
    }
}

/// Parses a spill file, keeping every entry up to the first corruption.
/// Loaded entries are marked `unvalidated`: the file is a trust boundary,
/// so the first hit on each re-validates its artifact against the live
/// model before the verdict is reused.
fn parse_cache_file(text: &str) -> HashMap<CacheKey, CacheEntry> {
    let mut entries = HashMap::new();
    let mut lines = CacheLines {
        lines: text.lines(),
    };
    if lines.next() != Some(CACHE_HEADER) {
        return entries;
    }
    while let Some(line) = lines.next() {
        let mut fields = line.split(' ');
        let parsed = (|| {
            if fields.next()? != "entry" {
                return None;
            }
            let hi = u64::from_str_radix(fields.next()?, 16).ok()?;
            let lo = u64::from_str_radix(fields.next()?, 16).ok()?;
            let property = unescape_name(fields.next()?)?;
            let key = CacheKey {
                fingerprint: Fingerprint(hi, lo),
                property,
            };
            let outcome = parse_outcome(&mut lines)?;
            Some((key, outcome))
        })();
        match parsed {
            Some((key, outcome)) => {
                entries.insert(
                    key,
                    CacheEntry {
                        outcome,
                        unvalidated: true,
                    },
                );
            }
            // Corrupted entry: stop here, keep the clean prefix.
            None => break,
        }
    }
    entries
}

/// `true` when every clause literal references a latch node of `model` —
/// the only shape `Invariant::certify` accepts without panicking.  A
/// forged or hash-colliding entry whose literals point past the model's
/// node table must reject cleanly instead of indexing out of bounds.
fn clauses_fit_model(model: &Model, clauses: &[Vec<Lit>]) -> bool {
    let latches: std::collections::HashSet<usize> =
        model.aig.latches().iter().map(|l| l.node).collect();
    clauses
        .iter()
        .flatten()
        .all(|l| latches.contains(&l.node()))
}

/// Re-validates a cached k-induction verdict by actually re-proving it:
/// BMC up to the recorded depth must stay counterexample-free and the
/// induction step must close by then.  Cheap — recorded depths are small
/// (the deep proofs go to PDR and carry certificates instead) — and it
/// turns a stale or forged entry into a rejection rather than a bogus
/// "proven" row.
fn induction_reproves(model: &Model, target: Lit, depth: usize) -> bool {
    let Some(index) = model.bads.iter().position(|b| b.lit == target) else {
        return false;
    };
    matches!(
        crate::bmc::check_safety(
            model,
            index,
            &crate::bmc::BmcOptions {
                max_depth: depth,
                max_induction: depth,
            },
        ),
        crate::bmc::SafetyResult::Proven { .. }
    )
}

/// Replays a cached trace through the two-state simulator: the target
/// literal must fire at the final cycle and every invariant constraint must
/// hold throughout.
fn replay_confirms(model: &Model, target: Lit, trace: &Trace) -> bool {
    if trace.is_empty() {
        return false;
    }
    let mut check_model = model.clone();
    check_model.bads = vec![BadProperty {
        name: "__cached_target__".into(),
        lit: target,
    }];
    let input_names: Vec<String> = (0..model.aig.num_inputs())
        .map(|i| model.aig.input_name(i).to_string())
        .collect();
    let mut sim = Simulator::new(&check_model);
    let mut fired_last = false;
    let mut inputs = vec![false; input_names.len()];
    for cycle in 0..trace.len() {
        for (slot, name) in inputs.iter_mut().zip(&input_names) {
            *slot = trace.value(cycle, name).unwrap_or(false);
        }
        let violations = sim.step(&inputs);
        if violations
            .iter()
            .any(|v| v.property.starts_with("constraint_"))
        {
            return false;
        }
        fired_last = violations.iter().any(|v| v.property == "__cached_target__");
    }
    fired_last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;

    #[test]
    fn run_ordered_preserves_item_order() {
        let items: Vec<usize> = (0..64).collect();
        let cancel = AtomicBool::new(false);
        let out = run_ordered(
            &items,
            8,
            &cancel,
            &crate::telemetry::Telemetry::disabled(),
            |i, &item| {
                assert_eq!(i, item);
                item * 2
            },
        );
        let values: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_ordered_sequential_matches_parallel() {
        let items: Vec<usize> = (0..32).collect();
        let cancel = AtomicBool::new(false);
        let seq = run_ordered(
            &items,
            1,
            &cancel,
            &crate::telemetry::Telemetry::disabled(),
            |_, &x| x + 1,
        );
        let par = run_ordered(
            &items,
            4,
            &cancel,
            &crate::telemetry::Telemetry::disabled(),
            |_, &x| x + 1,
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn cancelled_items_yield_none() {
        let items: Vec<usize> = (0..8).collect();
        let cancel = AtomicBool::new(true);
        let out = run_ordered(
            &items,
            4,
            &cancel,
            &crate::telemetry::Telemetry::disabled(),
            |_, &x| x,
        );
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn racer_configs_are_diverse_and_clamped() {
        let base = SolverConfig::default();
        let four = racer_configs(base, 4);
        assert_eq!(four.len(), 4);
        assert_eq!(four[0], base);
        // Every variant is pairwise distinct.
        for i in 0..four.len() {
            for j in i + 1..four.len() {
                assert_ne!(four[i], four[j], "variants {i} and {j} coincide");
            }
        }
        assert_eq!(racer_configs(base, 2).len(), 2);
        assert_eq!(racer_configs(base, 0).len(), 1, "clamped up to one");
        assert_eq!(racer_configs(base, 99).len(), 4, "clamped down to four");
    }

    #[test]
    fn shared_pools_key_on_fingerprint_and_kind() {
        let pools = SharedPools::new();
        assert!(pools.is_empty());
        let a = pools.pool(Fingerprint(1, 2), PoolKind::Bmc, 4);
        let same = pools.pool(Fingerprint(1, 2), PoolKind::Bmc, 4);
        let step = pools.pool(Fingerprint(1, 2), PoolKind::Step, 4);
        let other = pools.pool(Fingerprint(3, 4), PoolKind::Bmc, 4);
        assert!(Arc::ptr_eq(&a, &same), "same key must share one pool");
        assert!(!Arc::ptr_eq(&a, &step), "BMC and step pools must differ");
        assert!(!Arc::ptr_eq(&a, &other), "fingerprints must not collide");
        assert_eq!(pools.len(), 3);
    }

    #[test]
    fn sharing_options_enablement() {
        assert!(SharingOptions::default().enabled());
        assert!(!SharingOptions::disabled().enabled());
        assert!(!SharingOptions {
            racers: 1,
            ..SharingOptions::default()
        }
        .enabled());
    }

    #[test]
    fn effective_threads_resolves_auto() {
        let auto = ParallelOptions::default();
        assert!(auto.effective_threads() >= 1);
        let one = ParallelOptions {
            threads: 1,
            ..ParallelOptions::default()
        };
        assert_eq!(one.effective_threads(), 1);
    }

    /// One latch driven by one input, bad when the latch is high.
    fn tiny_model() -> (Model, Lit) {
        let mut aig = Aig::new();
        let x = aig.add_input("x");
        let q = aig.add_latch("q", false);
        aig.set_latch_next(q, x);
        let mut model = Model::new(aig);
        model.bads.push(BadProperty {
            name: "q_high".into(),
            lit: q,
        });
        (model, q)
    }

    fn key() -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint(1, 2),
            property: "q_high".into(),
        }
    }

    #[test]
    fn violated_entries_replay_on_hit() {
        let (model, q) = tiny_model();
        let cache = ProofCache::new();
        // A genuine 2-cycle counterexample: x=1 at cycle 0, q=1 at cycle 1.
        let mut trace = Trace::new(2);
        trace.record(0, "x", true, true);
        trace.record(1, "q", true, false);
        cache.store(key(), CachedOutcome::Violated(trace));
        match cache.lookup(&key(), &model, q) {
            Some(CachedVerdict::Violated(t)) => assert_eq!(t.len(), 2),
            other => panic!("expected replayed violation, got {other:?}"),
        }
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn bogus_traces_are_evicted() {
        let (model, q) = tiny_model();
        let cache = ProofCache::new();
        // x never high: the bad state is not reached and replay must fail.
        let mut trace = Trace::new(2);
        trace.record(0, "x", false, true);
        cache.store(key(), CachedOutcome::Violated(trace));
        assert!(cache.lookup(&key(), &model, q).is_none());
        assert_eq!(cache.stats().rejected, 1);
        assert!(cache.is_empty(), "failed entries must be evicted");
    }

    #[test]
    fn invariants_are_recertified_on_hit() {
        // busy-sticky model where "!q" is NOT inductive (input can set q):
        // a bogus invariant entry must be rejected.
        let (model, q) = tiny_model();
        let cache = ProofCache::new();
        cache.store(
            key(),
            CachedOutcome::Invariant {
                clauses: vec![vec![q.invert()]],
                frames: 1,
            },
        );
        assert!(cache.lookup(&key(), &model, q).is_none());
        assert_eq!(cache.stats().rejected, 1);

        // A model where the latch really never rises (next = FALSE): the
        // empty invariant certifies (q is initially low and stays low).
        let mut aig = Aig::new();
        let q2 = aig.add_latch("q", false);
        aig.set_latch_next(q2, Lit::FALSE);
        let mut safe = Model::new(aig);
        safe.bads.push(BadProperty {
            name: "q_high".into(),
            lit: q2,
        });
        cache.store(
            key(),
            CachedOutcome::Invariant {
                clauses: vec![vec![q2.invert()]],
                frames: 1,
            },
        );
        match cache.lookup(&key(), &safe, q2) {
            Some(CachedVerdict::Invariant(inv)) => assert_eq!(inv.num_clauses(), 1),
            other => panic!("expected certified invariant, got {other:?}"),
        }
    }

    /// A unique scratch directory under the target tmpdir.
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("autosva-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_cache_round_trips_every_outcome_kind() {
        let dir = scratch_dir("roundtrip");
        let cache = ProofCache::open(&dir);
        assert_eq!(cache.stats().loaded, 0);

        let mut trace = Trace::new(3);
        trace.record(0, "x", true, true);
        trace.record(2, "q", true, false);
        trace.record(1, "name with spaces", false, false);
        let entry = |name: &str| CacheKey {
            fingerprint: Fingerprint(0xABCD, 42),
            property: name.into(),
        };
        let inv_clauses = vec![vec![Lit::new(3, true), Lit::new(7, false)], vec![]];
        cache.store(entry("ind"), CachedOutcome::Induction { depth: 9 });
        cache.store(
            entry("inv"),
            CachedOutcome::Invariant {
                clauses: inv_clauses.clone(),
                frames: 4,
            },
        );
        cache.store(entry("reach"), CachedOutcome::Reachability);
        cache.store(
            entry("unreach"),
            CachedOutcome::Unreachable { certificate: None },
        );
        cache.store(
            entry("unreach-cert"),
            CachedOutcome::Unreachable {
                certificate: Some((inv_clauses.clone(), 2)),
            },
        );
        cache.store(entry("cex"), CachedOutcome::Violated(trace.clone()));
        cache.store(entry("wit"), CachedOutcome::Covered(trace.clone()));
        cache.flush().expect("flush succeeds");

        // A "fresh process": a new handle over the same directory.  The
        // two kinds with no re-checkable artifact are process-local and
        // must not have crossed the disk boundary.
        let reloaded = ProofCache::open(&dir);
        assert_eq!(reloaded.len(), 5);
        assert_eq!(reloaded.stats().loaded, 5);
        let entries = &reloaded.inner.lock().expect("lock").entries;
        assert!(
            entries.get(&entry("reach")).is_none(),
            "explicit-reachability verdicts must not persist"
        );
        assert!(
            entries.get(&entry("unreach")).is_none(),
            "certificate-less unreachability verdicts must not persist"
        );
        match entries.get(&entry("ind")).map(|e| &e.outcome) {
            Some(CachedOutcome::Induction { depth: 9 }) => {}
            other => panic!("induction entry corrupted: {other:?}"),
        }
        match entries.get(&entry("inv")).map(|e| &e.outcome) {
            Some(CachedOutcome::Invariant { clauses, frames: 4 }) => {
                assert_eq!(clauses, &inv_clauses);
            }
            other => panic!("invariant entry corrupted: {other:?}"),
        }
        match entries.get(&entry("unreach-cert")).map(|e| &e.outcome) {
            Some(CachedOutcome::Unreachable {
                certificate: Some((clauses, 2)),
            }) => assert_eq!(clauses, &inv_clauses),
            other => panic!("certificate entry corrupted: {other:?}"),
        }
        match entries.get(&entry("cex")).map(|e| &e.outcome) {
            Some(CachedOutcome::Violated(t)) => assert_eq!(t, &trace),
            other => panic!("trace entry corrupted: {other:?}"),
        }
        match entries.get(&entry("wit")).map(|e| &e.outcome) {
            Some(CachedOutcome::Covered(t)) => assert_eq!(t, &trace),
            other => panic!("witness entry corrupted: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_flush_is_deterministic_and_idempotent() {
        let dir = scratch_dir("determinism");
        let cache = ProofCache::open(&dir);
        for i in 0..8u64 {
            cache.store(
                CacheKey {
                    fingerprint: Fingerprint(i, i * 3),
                    property: format!("p{i}"),
                },
                CachedOutcome::Induction { depth: i as usize },
            );
        }
        cache.flush().expect("flush");
        let path = cache.spill_path().expect("persistent cache has a path");
        let first = std::fs::read_to_string(&path).expect("spill file exists");
        // Reload and re-flush (after a dirtying store of identical content):
        // the file must be byte-identical despite hash-map iteration order.
        let reloaded = ProofCache::open(&dir);
        reloaded.store(
            CacheKey {
                fingerprint: Fingerprint(0, 0),
                property: "p0".into(),
            },
            CachedOutcome::Induction { depth: 0 },
        );
        reloaded.flush().expect("flush");
        let second = std::fs::read_to_string(&path).expect("spill file exists");
        assert_eq!(first, second, "spill file must be deterministic");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_spill_files_load_their_clean_prefix() {
        let dir = scratch_dir("corruption");
        let cache = ProofCache::open(&dir);
        cache.store(
            CacheKey {
                fingerprint: Fingerprint(1, 1),
                property: "a".into(),
            },
            CachedOutcome::Induction { depth: 1 },
        );
        cache.store(
            CacheKey {
                fingerprint: Fingerprint(2, 2),
                property: "b".into(),
            },
            CachedOutcome::Induction { depth: 2 },
        );
        cache.flush().expect("flush");
        let path = cache.spill_path().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();

        // Truncated mid-entry: the clean prefix loads, nothing panics.
        let cut = text.len() - 5;
        std::fs::write(&path, &text[..cut]).unwrap();
        let truncated = ProofCache::open(&dir);
        assert!(
            truncated.len() < 2,
            "truncated file must drop the torn entry"
        );

        // Garbage (including invalid UTF-8): loads empty.
        std::fs::write(&path, b"!!! not a cache file !!!\x00\xff binary junk").unwrap();
        assert!(ProofCache::open(&dir).is_empty());

        // Wrong version: ignored wholesale.
        std::fs::write(&path, text.replace("v1", "v999")).unwrap();
        assert!(ProofCache::open(&dir).is_empty());

        // Interior corruption: entries before the bad line survive.
        let mut lines: Vec<&str> = text.lines().collect();
        let n = lines.len();
        lines.insert(n - 1, "entry zzzz not-hex garbage");
        std::fs::write(&path, lines.join("\n")).unwrap();
        let partial = ProofCache::open(&dir);
        assert_eq!(partial.len(), 1, "prefix before the corruption must load");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_cache_flush_is_a_noop() {
        let cache = ProofCache::new();
        cache.store(key(), CachedOutcome::Induction { depth: 1 });
        assert!(cache.spill_path().is_none());
        cache.flush().expect("no-op flush succeeds");
    }

    #[test]
    fn property_names_escape_and_unescape() {
        for name in ["plain", "with space", "perc%ent", "new\nline", "a%20b"] {
            assert_eq!(
                unescape_name(&escape_name(name)).as_deref(),
                Some(name),
                "round trip failed for {name:?}"
            );
        }
        assert_eq!(unescape_name("dangling%2"), None);
    }

    /// A latch that never rises (next = FALSE): "q high" is provable by
    /// induction at depth 0.
    fn safe_model() -> (Model, Lit) {
        let mut aig = Aig::new();
        let q = aig.add_latch("q", false);
        aig.set_latch_next(q, Lit::FALSE);
        let mut model = Model::new(aig);
        model.bads.push(BadProperty {
            name: "q_high".into(),
            lit: q,
        });
        (model, q)
    }

    #[test]
    fn in_process_induction_entries_hit_directly() {
        // Entries stored by this process are trusted on the fingerprint
        // match (pre-persistence semantics): no re-proof on hit.
        let (model, q) = tiny_model();
        let cache = ProofCache::new();
        cache.store(key(), CachedOutcome::Induction { depth: 3 });
        match cache.lookup(&key(), &model, q) {
            Some(CachedVerdict::Induction { depth }) => assert_eq!(depth, 3),
            other => panic!("expected induction hit, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 0, 1));
        // A different property name misses.
        let other_key = CacheKey {
            fingerprint: Fingerprint(1, 2),
            property: "other".into(),
        };
        assert!(cache.lookup(&other_key, &model, q).is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn disk_loaded_induction_entries_reprove_on_first_hit() {
        let dir = scratch_dir("induction-reprove");
        let (model, q) = safe_model();
        {
            let cache = ProofCache::open(&dir);
            cache.store(key(), CachedOutcome::Induction { depth: 1 });
            cache.flush().expect("flush");
        }
        // Fresh process: the loaded entry re-proves against the live model
        // (which really is 1-inductive) and then hits directly.
        let cache = ProofCache::open(&dir);
        for _ in 0..2 {
            match cache.lookup(&key(), &model, q) {
                Some(CachedVerdict::Induction { depth }) => assert_eq!(depth, 1),
                other => panic!("expected induction hit, got {other:?}"),
            }
        }
        assert_eq!(cache.stats().rejected, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bogus_disk_induction_entries_are_rejected() {
        // The bad state of tiny_model is reachable (the input drives the
        // latch), so a disk-loaded "proven by induction" verdict is a lie —
        // the first-hit re-proof must reject and evict it.
        let dir = scratch_dir("induction-bogus");
        {
            let cache = ProofCache::open(&dir);
            cache.store(key(), CachedOutcome::Induction { depth: 3 });
            cache.flush().expect("flush");
        }
        let (model, q) = tiny_model();
        let cache = ProofCache::open(&dir);
        assert!(cache.lookup(&key(), &model, q).is_none());
        assert_eq!(cache.stats().rejected, 1);
        assert!(cache.is_empty(), "rejected entries must be evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forged_spill_entries_reject_cleanly() {
        // Hand-forged entries with out-of-range artifacts must be rejected
        // at parse or validation time — never hang, allocate unboundedly,
        // or panic.
        let dir = scratch_dir("forged");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("proofs.cache");
        let fp = "0000000000000001 0000000000000002";
        // (a) absurd induction depth: rejected at parse time.
        std::fs::write(
            &path,
            format!("{CACHE_HEADER}\nentry {fp} q_high\ninduction 999999999\n"),
        )
        .unwrap();
        assert!(ProofCache::open(&dir).is_empty());
        // (b) absurd clause count: rejected before any allocation.
        std::fs::write(
            &path,
            format!("{CACHE_HEADER}\nentry {fp} q_high\ninvariant 1 4000000000\n"),
        )
        .unwrap();
        assert!(ProofCache::open(&dir).is_empty());
        // (c) absurd trace bounds: rejected at parse time.
        std::fs::write(
            &path,
            format!("{CACHE_HEADER}\nentry {fp} q_high\nviolated 4000000000 0\n"),
        )
        .unwrap();
        assert!(ProofCache::open(&dir).is_empty());
        // (d) invariant clause referencing a node beyond the model: parses,
        // but validation rejects instead of panicking in the encoder.
        let (model, q) = tiny_model();
        std::fs::write(
            &path,
            format!("{CACHE_HEADER}\nentry {fp} q_high\ninvariant 1 1\nclause 99999\n"),
        )
        .unwrap();
        let cache = ProofCache::open(&dir);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&key(), &model, q).is_none());
        assert_eq!(cache.stats().rejected, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
