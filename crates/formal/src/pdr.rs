//! IC3 / Property Directed Reachability over a [`Model`].
//!
//! BMC finds short counterexamples and k-induction closes shallow proofs,
//! but invariants that relate counters to control state (the shape of every
//! AutoSVA `had_a_request` obligation) defeat plain induction, and the exact
//! explicit-state fallback cliffs exponentially with the latch count.  PDR
//! fills that gap: it maintains a *trapezoid* of frames `F_0 ⊆ F_1 ⊆ … ⊆
//! F_k`, each an over-approximation of the states reachable in that many
//! steps, and refines them with clauses learnt from blocked proof
//! obligations until either a frame becomes inductive (proof, with the
//! invariant as a certificate) or an obligation chain reaches the initial
//! state (counterexample).
//!
//! Implementation notes (following Eén/Mishchenko/Brayton, *Efficient
//! implementation of property directed reachability*, FMCAD'11):
//!
//! * **one incremental solver** — the two-frame transition relation is
//!   encoded once through [`Unroller`]; frames are *delta-encoded* clause
//!   sets guarded by per-frame activation literals, so a query relative to
//!   `F_i` is a [`crate::sat::Solver::solve`] call assuming the activation
//!   literals of frames `i..`;
//! * **cube generalization** — blocked cubes are shrunk with the solver's
//!   final-conflict [`crate::sat::Solver::unsat_core`] and then by bounded
//!   literal dropping, always re-anchored so the cube keeps excluding the
//!   initial state;
//! * **predecessor lifting** — counterexamples-to-induction are widened
//!   from a concrete state to a cube by ternary simulation of the AIG
//!   (set a latch to X; keep it dropped while every target stays
//!   determined);
//! * **certificates** — a proof returns the [`Invariant`] (a CNF over latch
//!   literals) which [`Invariant::certify`] re-validates with an
//!   independent, freshly-encoded SAT check.

use crate::aig::{Aig, Lit, Node};
use crate::interrupt::Interrupt;
use crate::model::Model;
use crate::sat::{SatLit, SatResult, SolverConfig, SolverStats};
use crate::trace::Trace;
use crate::unroll::Unroller;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Options bounding the PDR engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdrOptions {
    /// Maximum number of frames in the trapezoid before giving up.
    pub max_frames: usize,
    /// Total SAT-query budget across the run; `Unknown` when exhausted.
    pub max_queries: u64,
    /// Rounds of literal-dropping attempted when generalizing a blocked
    /// cube (on top of the unsat-core shrink, which is always applied).
    pub generalize_rounds: usize,
}

impl Default for PdrOptions {
    fn default() -> Self {
        PdrOptions {
            max_frames: 80,
            max_queries: 500_000,
            generalize_rounds: 2,
        }
    }
}

/// A clause over latch literals that PDR established for every state
/// reachable within `through` steps: the negation of a cube blocked at
/// level `through` of the trapezoid (with the delta encoding, a clause of
/// frame `j` belongs to every `F_i`, `i ≤ j`, each of which
/// over-approximates the states reachable in at most `i` steps).
///
/// When PDR gives up without a verdict, its partial trapezoid is exported
/// as frame lemmas so the full-depth BMC racers can assert each clause
/// over their unrolling frames `0..=through` instead of rediscovering the
/// same reachability facts from scratch.  Lemmas only ever *strengthen* a
/// BMC instance with implied clauses, so verdicts are unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameLemma {
    /// Disjunction of latch literals (the negated blocked cube).
    pub clause: Vec<Lit>,
    /// Deepest time frame (inclusive) the clause is known to hold at.
    pub through: usize,
}

/// An inductive invariant certifying a PDR proof.
///
/// The invariant is a conjunction of clauses, each a disjunction of latch
/// literals of the checked model's AIG.  Together with the model's invariant
/// constraints it satisfies initiation (`init ⇒ Inv`), consecution
/// (`Inv ∧ constr ∧ T ⇒ Inv'`) and safety (`Inv ∧ constr ⇒ ¬bad`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invariant {
    clauses: Vec<Vec<Lit>>,
    /// Number of frames the trapezoid reached when the proof closed.
    pub frames_explored: usize,
}

impl Invariant {
    /// Rebuilds an invariant from raw clauses (disjunctions of latch
    /// literals of the target model's AIG).
    ///
    /// Used by the proof cache to reconstitute a stored certificate; the
    /// result carries no guarantee until [`Invariant::certify`] accepts it.
    pub fn from_clauses(clauses: Vec<Vec<Lit>>, frames_explored: usize) -> Invariant {
        Invariant {
            clauses,
            frames_explored,
        }
    }

    /// The clauses of the invariant (disjunctions of latch literals).
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Renders the clauses with latch names resolved against `aig`.
    pub fn render(&self, aig: &Aig) -> Vec<String> {
        self.clauses
            .iter()
            .map(|clause| {
                let lits: Vec<String> = clause
                    .iter()
                    .map(|l| {
                        let name = aig.name_of(l.node()).unwrap_or("latch");
                        if l.is_inverted() {
                            format!("!{name}")
                        } else {
                            name.to_string()
                        }
                    })
                    .collect();
                lits.join(" | ")
            })
            .collect()
    }

    /// Independently re-validates the certificate against `model` and the
    /// bad literal it was produced for.
    ///
    /// Initiation is checked syntactically (the initial state is a single
    /// concrete valuation); consecution and safety are checked together
    /// with one SAT call on a fresh encoding: `Inv ∧ constr ∧ T ∧ (bad ∨
    /// ¬Inv')` must be unsatisfiable.
    pub fn certify(&self, model: &Model, bad: Lit) -> bool {
        // Initiation.
        let init_of: HashMap<usize, bool> = model
            .aig
            .latches()
            .iter()
            .map(|l| (l.node, l.init))
            .collect();
        for clause in &self.clauses {
            let satisfied = clause.iter().any(|l| {
                init_of
                    .get(&l.node())
                    .map(|&v| v != l.is_inverted())
                    .unwrap_or(false)
            });
            if !satisfied {
                return false;
            }
        }

        // Consecution and safety in one query.
        let mut unroller = Unroller::new(&model.aig, false);
        for clause in &self.clauses {
            let sat_clause: Vec<SatLit> = clause
                .iter()
                .map(|&l| unroller.lit_in_frame(l, 0))
                .collect();
            unroller.add_clause(&sat_clause);
        }
        for &c in &model.constraints {
            unroller.constrain(c, 0, true);
        }
        // One selector per clause: d_c ⇒ clause violated at frame 1.
        let mut violated_any: Vec<SatLit> = vec![unroller.lit_in_frame(bad, 0)];
        for clause in &self.clauses {
            let d = SatLit::pos(unroller.new_var());
            for &l in clause {
                let l1 = unroller.lit_in_frame(l, 1);
                unroller.add_clause(&[d.negate(), l1.negate()]);
            }
            violated_any.push(d);
        }
        unroller.add_clause(&violated_any);
        unroller.solve_sat(&[]) == SatResult::Unsat
    }
}

/// Outcome of a PDR run.
#[derive(Debug, Clone, PartialEq)]
pub enum PdrResult {
    /// The property holds; the inductive invariant is attached.
    Proven(Invariant),
    /// A counterexample trace was found.
    Violated(Trace),
    /// The frame or query budget was exhausted without a verdict.
    Unknown {
        /// Number of frames reached before giving up.
        frames_explored: usize,
    },
    /// The run was preempted by its [`Interrupt`] handle (deadline,
    /// budget or cancellation) before reaching a verdict.
    Interrupted,
}

impl PdrResult {
    /// `true` when the property was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, PdrResult::Proven(_))
    }

    /// `true` when a counterexample was found.
    pub fn is_violated(&self) -> bool {
        matches!(self, PdrResult::Violated(_))
    }
}

/// Checks a bad-state property of `model` (an index into [`Model::bads`]).
///
/// # Panics
///
/// Panics if `bad_index` is out of range.
pub fn check_pdr(model: &Model, bad_index: usize, options: &PdrOptions) -> PdrResult {
    check_pdr_lit(model, model.bads[bad_index].lit, options)
}

/// Like [`check_pdr`], with an explicit solver configuration; also returns
/// the [`SolverStats`] of the incremental solver behind the run.
pub fn check_pdr_detailed(
    model: &Model,
    bad_index: usize,
    options: &PdrOptions,
    solver: SolverConfig,
) -> (PdrResult, SolverStats) {
    check_pdr_lit_detailed(model, model.bads[bad_index].lit, options, solver)
}

/// Checks an arbitrary target literal of `model` as a bad-state property
/// (used for assertions, unreachability of cover targets, and the
/// differential test harness).
pub fn check_pdr_lit(model: &Model, bad: Lit, options: &PdrOptions) -> PdrResult {
    check_pdr_lit_detailed(model, bad, options, SolverConfig::default()).0
}

/// Like [`check_pdr_lit`], with an explicit solver configuration and the
/// solver's cumulative search counters.
pub fn check_pdr_lit_detailed(
    model: &Model,
    bad: Lit,
    options: &PdrOptions,
    solver: SolverConfig,
) -> (PdrResult, SolverStats) {
    check_pdr_budgeted(model, bad, options, solver, &Interrupt::none())
}

/// Like [`check_pdr_lit_detailed`], preemptible: the [`Interrupt`]
/// handle is checked in the obligation queue (alongside the existing
/// query budget) and inside the incremental solver's search loop; when
/// it fires the run returns [`PdrResult::Interrupted`].
pub fn check_pdr_budgeted(
    model: &Model,
    bad: Lit,
    options: &PdrOptions,
    solver: SolverConfig,
    interrupt: &Interrupt,
) -> (PdrResult, SolverStats) {
    let (result, stats, _) = check_pdr_budgeted_lemmas(model, bad, options, solver, interrupt);
    (result, stats)
}

/// Like [`check_pdr_budgeted`], additionally returning the [`FrameLemma`]s
/// of the partial trapezoid when the run ends [`PdrResult::Unknown`] (the
/// budget ran out).  On every other outcome the lemma list is empty: a
/// proof or counterexample makes them moot, and an interrupted run must
/// not hand partial work to a caller that is being preempted.
pub fn check_pdr_budgeted_lemmas(
    model: &Model,
    bad: Lit,
    options: &PdrOptions,
    solver: SolverConfig,
    interrupt: &Interrupt,
) -> (PdrResult, SolverStats, Vec<FrameLemma>) {
    let _span = crate::telemetry::span("pdr.solve", "");
    let mut pdr = Pdr::new(model, bad, options, solver, interrupt.clone());
    let result = pdr.run();
    let lemmas = if matches!(result, PdrResult::Unknown { .. }) {
        pdr.frame_lemmas()
    } else {
        Vec::new()
    };
    let stats = pdr.unroller.stats();
    crate::telemetry::count_solver("pdr", &stats);
    (result, stats, lemmas)
}

/// A cube: a partial latch valuation, as sorted `(latch position, value)`
/// pairs.
type Cube = Vec<(usize, bool)>;

/// One clause-set delta of the trapezoid, guarded by an activation literal.
struct Frame {
    act: SatLit,
    cubes: Vec<Cube>,
}

/// A proof-obligation node; obligations chain toward the bad state through
/// `succ`, and carry the concrete input valuation driving their state into
/// the successor cube (for the final obligation: making the bad literal
/// true).
struct ObNode {
    cube: Cube,
    inputs: Vec<bool>,
    succ: Option<usize>,
}

enum BlockOutcome {
    Blocked,
    Cex(Trace),
    Budget,
    Interrupted,
}

/// Three-way answer of a relative-induction query, so an interrupted
/// solve can never be misread as "blocked" (which would over-block and
/// could close a false proof) or as a concrete predecessor.
enum RelQuery {
    /// SAT: a lifted predecessor cube plus the concrete inputs.
    Pred(Cube, Vec<bool>),
    /// UNSAT: the subset of the queried cube kept by the final conflict.
    Blocked(Cube),
    /// The solver was preempted before answering.
    Interrupted,
}

struct Pdr<'a> {
    model: &'a Model,
    bad: Lit,
    options: &'a PdrOptions,
    unroller: Unroller<'a>,
    /// AIG node per latch position.
    latch_nodes: Vec<usize>,
    latch_init: Vec<bool>,
    latch_next: Vec<Lit>,
    /// Frame-0 / frame-1 SAT literal per latch position.
    f0: Vec<SatLit>,
    f1: Vec<SatLit>,
    input_nodes: Vec<usize>,
    input_f0: Vec<SatLit>,
    latch_pos_of: HashMap<usize, usize>,
    input_pos_of: HashMap<usize, usize>,
    bad0: SatLit,
    /// `frames[0]` is the initial-state frame (its activation literal guards
    /// the init unit clauses); `frames[i]` for `i ≥ 1` holds the delta cubes
    /// blocked at level `i`.
    frames: Vec<Frame>,
    queries: u64,
    arena: Vec<ObNode>,
    seq: usize,
    /// Ternary-simulation scratch (one value per AIG node; `None` = X).
    val3: Vec<Option<bool>>,
    /// Cooperative preemption handle, checked alongside the query budget.
    interrupt: Interrupt,
}

impl<'a> Pdr<'a> {
    fn new(
        model: &'a Model,
        bad: Lit,
        options: &'a PdrOptions,
        solver: SolverConfig,
        interrupt: Interrupt,
    ) -> Self {
        let aig = &model.aig;
        let mut unroller = Unroller::with_config(aig, false, solver);
        unroller.set_interrupt(interrupt.clone());
        let latch_nodes: Vec<usize> = aig.latches().iter().map(|l| l.node).collect();
        let latch_init: Vec<bool> = aig.latches().iter().map(|l| l.init).collect();
        let latch_next: Vec<Lit> = aig.latches().iter().map(|l| l.next).collect();
        let f0: Vec<SatLit> = latch_nodes
            .iter()
            .map(|&n| unroller.lit_in_frame(Lit::new(n, false), 0))
            .collect();
        let f1: Vec<SatLit> = latch_nodes
            .iter()
            .map(|&n| unroller.lit_in_frame(Lit::new(n, false), 1))
            .collect();
        let input_nodes: Vec<usize> = aig.inputs().to_vec();
        let input_f0: Vec<SatLit> = input_nodes
            .iter()
            .map(|&n| unroller.lit_in_frame(Lit::new(n, false), 0))
            .collect();
        let bad0 = unroller.lit_in_frame(bad, 0);
        // The transition relation carries the invariant constraints on the
        // current frame, so every explored step satisfies them (the same
        // per-frame semantics the bounded engines use).
        for &c in &model.constraints {
            unroller.constrain(c, 0, true);
        }
        let init_act = SatLit::pos(unroller.new_var());
        for (pos, &sl) in f0.iter().enumerate() {
            let unit = if latch_init[pos] { sl } else { sl.negate() };
            unroller.add_clause(&[init_act.negate(), unit]);
        }
        let latch_pos_of = latch_nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        let input_pos_of = input_nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        let num_nodes = aig.num_nodes();
        Pdr {
            model,
            bad,
            options,
            unroller,
            latch_nodes,
            latch_init,
            latch_next,
            f0,
            f1,
            input_nodes,
            input_f0,
            latch_pos_of,
            input_pos_of,
            bad0,
            frames: vec![Frame {
                act: init_act,
                cubes: Vec::new(),
            }],
            queries: 0,
            arena: Vec::new(),
            seq: 0,
            val3: vec![None; num_nodes],
            interrupt,
        }
    }

    fn over_budget(&self) -> bool {
        self.queries > self.options.max_queries
    }

    /// `true` once the interrupt handle has fired (checked at the same
    /// places as [`Pdr::over_budget`], plus after solver answers).
    fn interrupted(&self) -> bool {
        self.interrupt.triggered().is_some()
    }

    fn frame_assumptions(&self, frame: usize) -> Vec<SatLit> {
        // Delta encoding: F_i is the conjunction of the clause sets of
        // frames i.. (F_0 additionally activates the init units, and every
        // blocked clause also holds at init).
        self.frames[frame..].iter().map(|f| f.act).collect()
    }

    fn solve(&mut self, assumptions: &[SatLit]) -> SatResult {
        self.queries += 1;
        // Each query costs one budget step (the SAT loop additionally
        // charges its conflicts) and is a deadline checkpoint, so a
        // cascade of short solves cannot outlive the deadline either.
        if self.interrupt.charge(1).is_some() || self.interrupt.poll().is_some() {
            return SatResult::Interrupted;
        }
        self.unroller.solve_sat(assumptions)
    }

    fn push_frame(&mut self) {
        let act = SatLit::pos(self.unroller.new_var());
        self.frames.push(Frame {
            act,
            cubes: Vec::new(),
        });
    }

    /// The SAT literal asserting `latch(pos) == value` at `frame` (0 or 1).
    fn state_lit(&self, pos: usize, value: bool, frame1: bool) -> SatLit {
        let base = if frame1 { self.f1[pos] } else { self.f0[pos] };
        if value {
            base
        } else {
            base.negate()
        }
    }

    fn cube_contains_init(&self, cube: &Cube) -> bool {
        cube.iter().all(|&(pos, val)| self.latch_init[pos] == val)
    }

    /// Queries `F_fi ∧ ¬cube ∧ T ∧ cube'`.  On SAT returns the lifted
    /// predecessor (cube + concrete inputs); on UNSAT returns the subset of
    /// `cube` kept by the final conflict.
    fn relative_query(&mut self, fi: usize, cube: &Cube) -> RelQuery {
        // Temporary ¬cube clause, guarded so it can be retired afterwards.
        let t = SatLit::pos(self.unroller.new_var());
        let mut neg_cube = vec![t.negate()];
        for &(pos, val) in cube {
            neg_cube.push(self.state_lit(pos, val, false).negate());
        }
        self.unroller.add_clause(&neg_cube);

        let mut assumptions = self.frame_assumptions(fi);
        assumptions.push(t);
        let primed: Vec<SatLit> = cube
            .iter()
            .map(|&(pos, val)| self.state_lit(pos, val, true))
            .collect();
        assumptions.extend_from_slice(&primed);

        let result = match self.solve(&assumptions) {
            SatResult::Sat => {
                let state: Vec<bool> = (0..self.f0.len())
                    .map(|p| self.unroller.sat_value(self.f0[p]))
                    .collect();
                let inputs: Vec<bool> = self
                    .input_f0
                    .iter()
                    .map(|&sl| self.unroller.sat_value(sl))
                    .collect();
                let pred = self.lift_predecessor(state, &inputs, cube);
                RelQuery::Pred(pred, inputs)
            }
            SatResult::Unsat => {
                let core = self.unroller.unsat_core().to_vec();
                let kept: Cube = cube
                    .iter()
                    .zip(&primed)
                    .filter(|&(_, sl)| core.contains(sl))
                    .map(|(&entry, _)| entry)
                    .collect();
                RelQuery::Blocked(kept)
            }
            SatResult::Interrupted => RelQuery::Interrupted,
        };
        // Retire the temporary clause for good.
        self.unroller.add_clause(&[t.negate()]);
        result
    }

    /// Ternary simulation: evaluates every AIG node for a partial latch
    /// valuation and concrete inputs (`None` = X).
    fn eval3(&mut self, latches: &[Option<bool>], inputs: &[bool]) {
        for idx in 0..self.val3.len() {
            self.val3[idx] = match self.model.aig.node(idx) {
                Node::False => Some(false),
                Node::Input => self.input_pos_of.get(&idx).map(|&p| inputs[p]),
                Node::Latch => self.latch_pos_of.get(&idx).and_then(|&p| latches[p]),
                Node::And(a, b) => {
                    let va = self.lit3(a);
                    let vb = self.lit3(b);
                    match (va, vb) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    }
                }
            };
        }
    }

    fn lit3(&self, lit: Lit) -> Option<bool> {
        self.val3[lit.node()].map(|v| v ^ lit.is_inverted())
    }

    /// `true` when every `(lit, expected)` target is determined to its
    /// expected value under the current ternary valuation.
    fn targets_hold(
        &mut self,
        latches: &[Option<bool>],
        inputs: &[bool],
        targets: &[(Lit, bool)],
    ) -> bool {
        self.eval3(latches, inputs);
        targets
            .iter()
            .all(|&(lit, expected)| self.lit3(lit) == Some(expected))
    }

    /// Greedily widens a concrete state into a cube by dropping latch
    /// literals that the targets do not depend on (inputs stay concrete).
    fn lift(&mut self, state: Vec<bool>, inputs: &[bool], targets: &[(Lit, bool)]) -> Cube {
        let mut kept: Vec<Option<bool>> = state.iter().map(|&v| Some(v)).collect();
        for pos in 0..kept.len() {
            kept[pos] = None;
            if !self.targets_hold(&kept, inputs, targets) {
                kept[pos] = Some(state[pos]);
            }
        }
        kept.iter()
            .enumerate()
            .filter_map(|(pos, v)| v.map(|val| (pos, val)))
            .collect()
    }

    /// Lifts a bad-state model: the cube must keep the bad literal true and
    /// every invariant constraint satisfied under the witnessed inputs.
    fn lift_bad(&mut self, state: Vec<bool>, inputs: &[bool]) -> Cube {
        let mut targets = vec![(self.bad, true)];
        targets.extend(self.model.constraints.iter().map(|&c| (c, true)));
        self.lift(state, inputs, &targets)
    }

    /// Lifts a predecessor model: the cube must keep every next-state
    /// literal of the successor cube at its value and every invariant
    /// constraint satisfied under the witnessed inputs.
    fn lift_predecessor(&mut self, state: Vec<bool>, inputs: &[bool], succ: &Cube) -> Cube {
        let mut targets: Vec<(Lit, bool)> = succ
            .iter()
            .map(|&(pos, val)| (self.latch_next[pos], val))
            .collect();
        targets.extend(self.model.constraints.iter().map(|&c| (c, true)));
        self.lift(state, inputs, &targets)
    }

    /// Restores init exclusion after a shrink: every blocked cube must keep
    /// at least one literal disagreeing with the initial state.  `full` is
    /// the original cube the shrink started from (known init-excluding).
    fn ensure_init_excluded(&self, gen: &mut Cube, full: &Cube) {
        if !self.cube_contains_init(gen) {
            return;
        }
        let back = full
            .iter()
            .find(|&&(pos, val)| self.latch_init[pos] != val)
            .copied()
            .expect("blocked cubes exclude the initial state");
        gen.push(back);
        gen.sort_unstable();
    }

    /// Adds `cube` as a blocked clause at level `level` and prunes
    /// syntactically subsumed bookkeeping entries.
    fn add_blocked_cube(&mut self, cube: Cube, level: usize) {
        let mut clause = vec![self.frames[level].act.negate()];
        for &(pos, val) in &cube {
            clause.push(self.state_lit(pos, val, false).negate());
        }
        self.unroller.add_clause(&clause);
        // Drop syntactically subsumed entries (including exact duplicates —
        // the fresh copy is pushed below, so propagation never re-queries
        // the same cube twice from one frame).
        for frame in &mut self.frames[1..=level] {
            frame.cubes.retain(|existing| !subsumes(&cube, existing));
        }
        self.frames[level].cubes.push(cube);
    }

    fn arena_push(&mut self, cube: Cube, inputs: Vec<bool>, succ: Option<usize>) -> usize {
        self.arena.push(ObNode { cube, inputs, succ });
        self.arena.len() - 1
    }

    /// Recursively blocks a counterexample-to-induction cube at the
    /// frontier via the proof-obligation queue.
    fn block(&mut self, cube: Cube, inputs: Vec<bool>, frontier: usize) -> BlockOutcome {
        let root = self.arena_push(cube, inputs, None);
        let mut queue: BinaryHeap<Reverse<(usize, usize, usize)>> = BinaryHeap::new();
        self.seq += 1;
        queue.push(Reverse((frontier, self.seq, root)));

        while let Some(Reverse((frame, _, id))) = queue.pop() {
            #[cfg(any(test, feature = "fault-injection"))]
            crate::faults::point("pdr.block_cube");
            if self.over_budget() {
                return BlockOutcome::Budget;
            }
            if self.interrupt.poll().is_some() {
                return BlockOutcome::Interrupted;
            }
            if self.cube_contains_init(&self.arena[id].cube) {
                return BlockOutcome::Cex(self.trace_from_chain(id));
            }
            debug_assert!(frame >= 1, "non-init obligations sit at frame >= 1");
            let cube = self.arena[id].cube.clone();
            match self.relative_query(frame - 1, &cube) {
                RelQuery::Interrupted => return BlockOutcome::Interrupted,
                RelQuery::Pred(pred, pinputs) => {
                    // A predecessor reaches the cube: chase it one frame
                    // down and retry this obligation afterwards.
                    let pid = self.arena_push(pred, pinputs, Some(id));
                    self.seq += 1;
                    queue.push(Reverse((frame - 1, self.seq, pid)));
                    self.seq += 1;
                    queue.push(Reverse((frame, self.seq, id)));
                }
                RelQuery::Blocked(core_cube) => {
                    let mut gen = core_cube;
                    self.ensure_init_excluded(&mut gen, &cube);
                    self.drop_literals(&mut gen, frame - 1);
                    // Push the clause as far up the trapezoid as it stays
                    // relatively inductive.  An interrupt stops the
                    // climb; `gen` is already blocked at `frame`, so
                    // recording it at the level reached stays sound.
                    let mut level = frame;
                    while level + 1 < self.frames.len() {
                        if self.over_budget() || self.interrupted() {
                            break;
                        }
                        match self.relative_query(level, &gen) {
                            RelQuery::Blocked(_) => level += 1,
                            RelQuery::Pred(..) | RelQuery::Interrupted => break,
                        }
                    }
                    self.add_blocked_cube(gen, level);
                    // Keep chasing the same obligation deeper: it often
                    // re-blocks cheaply and speeds up convergence.
                    if level + 1 < self.frames.len() {
                        self.seq += 1;
                        queue.push(Reverse((level + 1, self.seq, id)));
                    }
                }
            }
        }
        BlockOutcome::Blocked
    }

    /// Bounded literal dropping on top of the unsat-core shrink.  Every
    /// candidate is re-validated with a relative-induction query, so the
    /// invariant "gen is blocked relative to F_fi and excludes init" is
    /// maintained throughout.
    fn drop_literals(&mut self, gen: &mut Cube, fi: usize) {
        for _ in 0..self.options.generalize_rounds {
            let mut changed = false;
            let mut idx = 0;
            while idx < gen.len() && gen.len() > 1 {
                if self.over_budget() || self.interrupted() {
                    // `gen` is valid as-is (blocked by its last accepted
                    // query); stopping the shrink early loses only
                    // generality, never soundness.
                    return;
                }
                let mut candidate = gen.clone();
                candidate.remove(idx);
                if self.cube_contains_init(&candidate) {
                    idx += 1;
                    continue;
                }
                match self.relative_query(fi, &candidate) {
                    RelQuery::Blocked(mut core_cube) => {
                        self.ensure_init_excluded(&mut core_cube, &candidate);
                        *gen = core_cube;
                        changed = true;
                        idx = 0;
                    }
                    RelQuery::Pred(..) => idx += 1,
                    RelQuery::Interrupted => return,
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Clause propagation after a new frontier frame was opened.  Returns
    /// the inductive invariant when two adjacent frames become equal.
    fn propagate_clauses(&mut self) -> Option<Invariant> {
        for i in 1..self.frames.len() - 1 {
            let cubes = self.frames[i].cubes.clone();
            for cube in cubes {
                if self.over_budget() || self.interrupted() {
                    return None;
                }
                if matches!(self.relative_query(i, &cube), RelQuery::Blocked(_)) {
                    // add_blocked_cube prunes the frame-i copy (it subsumes
                    // itself), completing the move to frame i + 1.
                    self.add_blocked_cube(cube, i + 1);
                }
            }
            if self.frames[i].cubes.is_empty() {
                return Some(self.extract_invariant(i + 1));
            }
        }
        None
    }

    /// Exports the partial trapezoid as [`FrameLemma`]s: the negation of
    /// every cube blocked at level `j ≥ 1` holds in all states reachable
    /// within `j` steps (the same clause/polarity construction as
    /// [`Pdr::extract_invariant`], per frame instead of from a fixpoint).
    fn frame_lemmas(&self) -> Vec<FrameLemma> {
        let mut lemmas = Vec::new();
        for (level, frame) in self.frames.iter().enumerate().skip(1) {
            for cube in &frame.cubes {
                let clause: Vec<Lit> = cube
                    .iter()
                    .map(|&(pos, val)| Lit::new(self.latch_nodes[pos], val))
                    .collect();
                lemmas.push(FrameLemma {
                    clause,
                    through: level,
                });
            }
        }
        lemmas
    }

    fn extract_invariant(&self, start: usize) -> Invariant {
        let mut clauses = Vec::new();
        for frame in &self.frames[start..] {
            for cube in &frame.cubes {
                let clause: Vec<Lit> = cube
                    .iter()
                    .map(|&(pos, val)| Lit::new(self.latch_nodes[pos], val))
                    .collect();
                clauses.push(clause);
            }
        }
        Invariant {
            clauses,
            frames_explored: self.frames.len() - 1,
        }
    }

    /// Concrete one-step simulation used for trace reconstruction.
    fn simulate_step(&mut self, state: &[bool], inputs: &[bool]) -> Vec<bool> {
        let latches: Vec<Option<bool>> = state.iter().map(|&v| Some(v)).collect();
        self.eval3(&latches, inputs);
        self.latch_next
            .iter()
            .map(|&next| self.lit3(next).expect("concrete simulation is total"))
            .collect()
    }

    /// Rebuilds a counterexample trace from a completed obligation chain
    /// (deepest obligation first; it contains the initial state).
    fn trace_from_chain(&mut self, deepest: usize) -> Trace {
        let mut ids = vec![deepest];
        while let Some(next) = self.arena[*ids.last().expect("chain")].succ {
            ids.push(next);
        }
        let depth = ids.len();
        let mut trace = Trace::new(depth);
        let mut state: Vec<bool> = self.latch_init.clone();
        for (frame, &id) in ids.iter().enumerate() {
            let inputs = self.arena[id].inputs.clone();
            for (p, &node) in self.input_nodes.clone().iter().enumerate() {
                let name = self.model.aig.name_of(node).unwrap_or("input").to_string();
                trace.record(frame, &name, inputs[p], true);
            }
            for (p, &node) in self.latch_nodes.clone().iter().enumerate() {
                let name = self.model.aig.name_of(node).unwrap_or("latch").to_string();
                trace.record(frame, &name, state[p], false);
            }
            if frame + 1 < depth {
                state = self.simulate_step(&state, &inputs);
            }
        }
        trace
    }

    fn run(&mut self) -> PdrResult {
        // Depth 0: a bad initial state is a one-frame counterexample.
        let init_assumptions = {
            let mut a = self.frame_assumptions(0);
            a.push(self.bad0);
            a
        };
        match self.solve(&init_assumptions) {
            SatResult::Sat => {
                let inputs: Vec<bool> = self
                    .input_f0
                    .iter()
                    .map(|&sl| self.unroller.sat_value(sl))
                    .collect();
                let id = self.arena_push(Vec::new(), inputs, None);
                return PdrResult::Violated(self.trace_from_chain(id));
            }
            SatResult::Unsat => {}
            SatResult::Interrupted => return PdrResult::Interrupted,
        }
        self.push_frame();

        loop {
            // Blocking phase: clear every counterexample-to-induction at
            // the frontier.
            loop {
                #[cfg(any(test, feature = "fault-injection"))]
                crate::faults::point("pdr.block_cube");
                if self.over_budget() {
                    return PdrResult::Unknown {
                        frames_explored: self.frames.len() - 1,
                    };
                }
                if self.interrupted() {
                    return PdrResult::Interrupted;
                }
                let frontier = self.frames.len() - 1;
                let mut assumptions = self.frame_assumptions(frontier);
                assumptions.push(self.bad0);
                match self.solve(&assumptions) {
                    SatResult::Unsat => break,
                    SatResult::Interrupted => return PdrResult::Interrupted,
                    SatResult::Sat => {
                        let state: Vec<bool> = (0..self.f0.len())
                            .map(|p| self.unroller.sat_value(self.f0[p]))
                            .collect();
                        let inputs: Vec<bool> = self
                            .input_f0
                            .iter()
                            .map(|&sl| self.unroller.sat_value(sl))
                            .collect();
                        let cube = self.lift_bad(state, &inputs);
                        match self.block(cube, inputs, frontier) {
                            BlockOutcome::Blocked => {}
                            BlockOutcome::Cex(trace) => return PdrResult::Violated(trace),
                            BlockOutcome::Budget => {
                                return PdrResult::Unknown {
                                    frames_explored: self.frames.len() - 1,
                                }
                            }
                            BlockOutcome::Interrupted => return PdrResult::Interrupted,
                        }
                    }
                }
            }
            if self.frames.len() > self.options.max_frames {
                return PdrResult::Unknown {
                    frames_explored: self.frames.len() - 1,
                };
            }
            // Between frames: garbage-collect the clause database.  Every
            // blocked-cube query retires its temporary ¬cube clause through
            // a negated activation unit, and learnt clauses satisfied at
            // level 0 accumulate with them — the blocking phase above is
            // where both pile up.
            self.unroller.simplify();
            self.push_frame();
            if let Some(invariant) = self.propagate_clauses() {
                return PdrResult::Proven(invariant);
            }
        }
    }
}

/// `a` subsumes `b` when every literal of `a` occurs in `b` (so `¬a ⇒ ¬b`).
fn subsumes(a: &Cube, b: &Cube) -> bool {
    a.iter().all(|entry| b.contains(entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;
    use crate::model::BadProperty;

    /// A 3-bit counter that saturates at 7 (shared with the BMC tests).
    fn saturating_counter() -> (Model, Vec<Lit>) {
        let mut aig = Aig::new();
        let bits: Vec<Lit> = (0..3)
            .map(|i| aig.add_latch(format!("c{i}"), false))
            .collect();
        let all_ones = aig.and_many(&bits);
        let b0 = bits[0];
        let b1 = bits[1];
        let b2 = bits[2];
        let n0 = aig.xor(b0, Lit::TRUE);
        let carry0 = b0;
        let n1 = aig.xor(b1, carry0);
        let carry1 = aig.and(b1, carry0);
        let n2 = aig.xor(b2, carry1);
        let hold0 = aig.mux(all_ones, b0, n0);
        let hold1 = aig.mux(all_ones, b1, n1);
        let hold2 = aig.mux(all_ones, b2, n2);
        aig.set_latch_next(b0, hold0);
        aig.set_latch_next(b1, hold1);
        aig.set_latch_next(b2, hold2);
        (Model::new(aig), bits)
    }

    #[test]
    fn pdr_finds_reachable_bad_state_with_exact_trace() {
        let (mut model, bits) = saturating_counter();
        // Bad: counter value == 5 (101), reached at frame 5.
        let b = {
            let aig = &mut model.aig;
            let not1 = bits[1].invert();
            let t = aig.and(bits[0], not1);
            aig.and(t, bits[2])
        };
        model.bads.push(BadProperty {
            name: "reaches_five".into(),
            lit: b,
        });
        match check_pdr(&model, 0, &PdrOptions::default()) {
            PdrResult::Violated(trace) => {
                assert_eq!(trace.len(), 6);
                // Frame 5 must be the value 5 (101).
                assert_eq!(trace.value(5, "c0"), Some(true));
                assert_eq!(trace.value(5, "c1"), Some(false));
                assert_eq!(trace.value(5, "c2"), Some(true));
                // Frame 0 is reset.
                assert_eq!(trace.value(0, "c0"), Some(false));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn pdr_proves_saturation_invariant_with_certificate() {
        // Once saturated, the counter stays saturated — the reachability
        // proof that defeats plain induction... actually provable by
        // 1-induction, but the certificate path is what matters here.
        let (mut model, bits) = saturating_counter();
        let (was_saturated, all_ones) = {
            let aig = &mut model.aig;
            let all_ones = aig.and_many(&bits);
            let was = aig.add_latch("was_saturated", false);
            let next = aig.or(was, all_ones);
            aig.set_latch_next(was, next);
            (was, all_ones)
        };
        let bad = {
            let aig = &mut model.aig;
            aig.and(was_saturated, all_ones.invert())
        };
        model.bads.push(BadProperty {
            name: "saturation_sticks".into(),
            lit: bad,
        });
        match check_pdr(&model, 0, &PdrOptions::default()) {
            PdrResult::Proven(invariant) => {
                assert!(invariant.certify(&model, bad), "certificate must check");
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn pdr_proves_counter_never_wraps() {
        // "Counter value 0 with a sticky has-counted flag" needs
        // reachability information: it is exactly the counter-vs-state
        // shape that defeats k-induction at small depths.
        let (mut model, bits) = saturating_counter();
        let started = {
            let aig = &mut model.aig;
            let any = aig.or_many(&bits);
            let started = aig.add_latch("started", false);
            let next = aig.or(started, any);
            aig.set_latch_next(started, next);
            started
        };
        let bad = {
            let aig = &mut model.aig;
            let zero = {
                let inv: Vec<Lit> = bits.iter().map(|b| b.invert()).collect();
                aig.and_many(&inv)
            };
            aig.and(started, zero)
        };
        model.bads.push(BadProperty {
            name: "wraps_to_zero".into(),
            lit: bad,
        });
        let result = check_pdr(&model, 0, &PdrOptions::default());
        match result {
            PdrResult::Proven(invariant) => {
                assert!(invariant.certify(&model, bad));
                assert!(invariant.num_clauses() >= 1);
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn pdr_respects_constraints() {
        // A free input drives a latch; constraining the input low keeps the
        // latch low forever.
        let mut aig = Aig::new();
        let inp = aig.add_input("x");
        let q = aig.add_latch("q", false);
        aig.set_latch_next(q, inp);
        let mut model = Model::new(aig);
        model.constraints.push(inp.invert());
        model.bads.push(BadProperty {
            name: "q_high".into(),
            lit: q,
        });
        let result = check_pdr(&model, 0, &PdrOptions::default());
        assert!(result.is_proven(), "got {result:?}");
        if let PdrResult::Proven(inv) = result {
            assert!(inv.certify(&model, q));
        }
    }

    #[test]
    fn pdr_immediate_counterexample_at_reset() {
        let mut aig = Aig::new();
        let q = aig.add_latch("q", true);
        aig.set_latch_next(q, q);
        let mut model = Model::new(aig);
        model.bads.push(BadProperty {
            name: "q_high".into(),
            lit: q,
        });
        match check_pdr(&model, 0, &PdrOptions::default()) {
            PdrResult::Violated(trace) => {
                assert_eq!(trace.len(), 1);
                assert_eq!(trace.value(0, "q"), Some(true));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn pdr_trivial_safety_yields_empty_invariant() {
        let (mut model, _) = saturating_counter();
        model.bads.push(BadProperty {
            name: "never".into(),
            lit: Lit::FALSE,
        });
        match check_pdr(&model, 0, &PdrOptions::default()) {
            PdrResult::Proven(invariant) => {
                assert_eq!(invariant.num_clauses(), 0);
                assert!(invariant.certify(&model, Lit::FALSE));
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let (mut model, bits) = saturating_counter();
        let b = {
            let aig = &mut model.aig;
            aig.and_many(&bits)
        };
        model.bads.push(BadProperty {
            name: "saturated".into(),
            lit: b,
        });
        let tiny = PdrOptions {
            max_frames: 2,
            max_queries: 500_000,
            generalize_rounds: 0,
        };
        // The bad state is 7 steps deep: 2 frames cannot decide it.
        let result = check_pdr(&model, 0, &tiny);
        assert!(
            matches!(result, PdrResult::Unknown { .. }),
            "got {result:?}"
        );
    }

    #[test]
    fn invariant_certify_rejects_bogus_certificates() {
        let (mut model, bits) = saturating_counter();
        model.bads.push(BadProperty {
            name: "never".into(),
            lit: Lit::FALSE,
        });
        // "bit 0 is always low" fails consecution (and is simply wrong).
        let bogus = Invariant {
            clauses: vec![vec![bits[0].invert()]],
            frames_explored: 1,
        };
        assert!(!bogus.certify(&model, Lit::FALSE));
        // "bit 0 is always high" fails initiation.
        let bogus_init = Invariant {
            clauses: vec![vec![bits[0]]],
            frames_explored: 1,
        };
        assert!(!bogus_init.certify(&model, Lit::FALSE));
    }
}
