//! Elaboration of parsed SystemVerilog into an [`Aig`].
//!
//! The elaborator supports the synthesizable subset used by the design corpus
//! of this reproduction: parameters, packed vectors, small unpacked arrays,
//! `assign`, `always_comb`, `always_ff` with asynchronous reset, module
//! instances, and the usual expression operators.  The output is a sequential
//! AIG plus a symbol table mapping hierarchical signal names to their
//! current-cycle bit vectors, which the property compiler uses to wire
//! AutoSVA expressions into the model.
//!
//! Modelling decisions:
//!
//! * the clock is implicit (one AIG step = one clock edge);
//! * the reset port is tied to its *inactive* level and the reset branch of
//!   each `always_ff` provides the latch initial values — the standard
//!   "reset as initial state" formal setup;
//! * undriven signals (and unconnected submodule inputs) become free primary
//!   inputs, which is the sound over-approximation for missing environment.

use crate::aig::{Aig, Lit};
use crate::words;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use svparse::ast::{
    AlwaysBlock, AlwaysKind, BinaryOp, CaseItem, DataType, Direction, Expr, Module, ModuleItem,
    SourceFile, Stmt, UnaryOp,
};

/// Options controlling elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabOptions {
    /// Name of the top module; `None` uses the first module in the file.
    pub top: Option<String>,
    /// Parameter overrides for the top module.
    pub params: Vec<(String, u128)>,
    /// Clock signal name (excluded from the model inputs).
    pub clock: String,
    /// Reset signal name (tied to its inactive level).
    pub reset: String,
    /// `true` when the reset is active low.
    pub reset_active_low: bool,
}

impl Default for ElabOptions {
    fn default() -> Self {
        ElabOptions {
            top: None,
            params: Vec::new(),
            clock: "clk_i".to_string(),
            reset: "rst_ni".to_string(),
            reset_active_low: true,
        }
    }
}

/// Structured detail attached to an "unknown struct field" error, enabling
/// caret-snippet rendering against the originating source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownField {
    /// Source text of the base expression (`fu_data_i`).
    pub base: String,
    /// The field that does not exist (`fuu`).
    pub field: String,
    /// Name of the struct type the base has.
    pub type_name: String,
    /// The fields that type actually declares, MSB-first.
    pub valid: Vec<String>,
}

/// An elaboration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError {
    /// Human-readable description.
    pub message: String,
    /// Structured detail when the error is an unknown-struct-field access;
    /// lets [`ElabError::render`] point a caret at the field in the source.
    pub unknown_field: Option<UnknownField>,
}

impl ElabError {
    /// Creates a plain (message-only) elaboration error.
    pub fn new(message: impl Into<String>) -> Self {
        ElabError {
            message: message.into(),
            unknown_field: None,
        }
    }

    pub(crate) fn field_error(
        base: impl Into<String>,
        field: impl Into<String>,
        layout: &StructLayout,
    ) -> Self {
        let base = base.into();
        let field = field.into();
        let valid: Vec<String> = layout.fields.iter().map(|f| f.name.clone()).collect();
        ElabError {
            message: format!(
                "`{base}` has no field `{field}` (struct `{}` declares: {})",
                layout.name,
                valid.join(", ")
            ),
            unknown_field: Some(UnknownField {
                base,
                field,
                type_name: layout.name.clone(),
                valid,
            }),
        }
    }

    /// Formats the error against the source text it came from.  Unknown
    /// struct-field errors get a compiler-style caret snippet underlining the
    /// field (located textually, since annotation expressions carry no spans)
    /// plus the list of valid fields; every other error renders its message.
    pub fn render(&self, source: &str) -> String {
        let Some(uf) = &self.unknown_field else {
            return self.to_string();
        };
        let needle = format!("{}.{}", uf.base, uf.field);
        // First occurrence at identifier boundaries — a plain substring
        // search could land inside a longer name (`s.fu` inside `bus.full`).
        let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_' || c == '$';
        let Some(pos) = source.match_indices(&needle).map(|(i, _)| i).find(|&i| {
            let before_ok = source[..i]
                .chars()
                .next_back()
                .is_none_or(|c| !is_ident(c) && c != '.');
            let after_ok = source[i + needle.len()..]
                .chars()
                .next()
                .is_none_or(|c| !is_ident(c));
            before_ok && after_ok
        }) else {
            return self.to_string();
        };
        let field_pos = pos + uf.base.len() + 1;
        let lc = svparse::span::line_col(source, field_pos);
        let mut out = format!(
            "{lc}: unknown field `{}` of struct `{}`",
            uf.field, uf.type_name
        );
        if let Some(line_text) = source.lines().nth(lc.line.saturating_sub(1)) {
            let pad: String = line_text
                .chars()
                .take(lc.column.saturating_sub(1))
                .map(|c| if c == '\t' { '\t' } else { ' ' })
                .collect();
            let carets = "^".repeat(uf.field.chars().count().max(1));
            out.push_str(&format!("\n  {line_text}\n  {pad}{carets}"));
        }
        out.push_str(&format!(
            "\n  valid fields of `{}`: {}",
            uf.type_name,
            uf.valid.join(", ")
        ));
        out
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error: {}", self.message)
    }
}

impl Error for ElabError {}

/// Result alias for elaboration.
pub type Result<T> = std::result::Result<T, ElabError>;

/// One field of a resolved packed-struct layout.
///
/// SystemVerilog packed structs list their MSB field first; offsets here are
/// LSB-based bit positions into the flat signal, so the *last* declared field
/// sits at offset 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldLayout {
    /// Field name.
    pub name: String,
    /// LSB offset of the field within the flat word.
    pub offset: usize,
    /// Field width in bits.
    pub width: usize,
    /// Layout index of the field's own struct type, when the field is itself
    /// a packed struct (enables nested member access `a.b.c`).
    pub layout: Option<usize>,
}

/// A resolved packed-struct type: total width plus the field→bit-slice map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// Declared type name (unscoped).
    pub name: String,
    /// Total width in bits.
    pub width: usize,
    /// Fields in declaration (MSB-first) order.
    pub fields: Vec<FieldLayout>,
}

impl StructLayout {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldLayout> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// The resolved user-defined types of a source file: struct layouts, named
/// type widths, and enum member constants.  Built once per elaboration from
/// every `typedef` at file, package, and module scope.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypeTable {
    /// All resolved struct layouts; indices are stable for the table's
    /// lifetime and referenced by [`FieldLayout::layout`] and the
    /// per-signal type map of [`ElabDesign`].
    pub layouts: Vec<StructLayout>,
    /// Type name (both `pkg::name` and unscoped alias) → layout index.
    by_name: HashMap<String, usize>,
    /// Type name → width, for every resolved named type (vectors, enums and
    /// structs alike).
    widths: HashMap<String, usize>,
    /// Enum member name (both `pkg::MEMBER` and unscoped alias) →
    /// `(value, width)`.
    enum_consts: HashMap<String, (u128, usize)>,
    /// Enum type key (same keys as `widths`) → its members in declaration
    /// order, so the design lint can reason about whole enums (unreachable
    /// states) rather than individual constants.
    enum_defs: HashMap<String, Vec<(String, u128)>>,
    /// Unscoped type names with conflicting definitions across scopes; the
    /// alias is withdrawn so only `pkg::name` access resolves.
    poisoned_types: HashSet<String>,
    /// How many alias-exporting scopes declare each type name.  Names with
    /// more than one exporter publish their unscoped alias only once every
    /// definition has resolved and agreed — never mid-fixpoint, so a
    /// typedef referencing the bare name cannot bind to whichever package
    /// happened to come first in source order.
    alias_expected: HashMap<String, usize>,
    /// Resolved-but-unpublished alias candidates for contested names.
    alias_pending: HashMap<String, Vec<(usize, Option<usize>)>>,
    /// Unscoped enum-member names with conflicting definitions across
    /// scopes (same policy as `poisoned_types`).
    poisoned_consts: HashSet<String>,
    /// Per module: names of module parameters referenced by that module's
    /// own typedefs.  Such typedefs are resolved against the *default*
    /// parameter values, so overriding one of these parameters is rejected
    /// instead of silently producing a wrong-width model.
    module_typedef_param_refs: HashMap<String, HashSet<String>>,
}

impl TypeTable {
    /// The layout at `index`.
    pub fn layout(&self, index: usize) -> &StructLayout {
        &self.layouts[index]
    }

    /// Layout index of a struct type name, if the name resolves to a struct.
    pub fn layout_index(&self, type_name: &str) -> Option<usize> {
        self.by_name.get(type_name).copied()
    }

    /// Width of a named type, if known.
    pub fn width_of(&self, type_name: &str) -> Option<usize> {
        self.widths.get(type_name).copied()
    }

    /// Resolves a type name against the enclosing scope: an unqualified
    /// name first tries `scope::name` (module-local typedefs, same-package
    /// references), then the global unscoped alias.  Returns the key under
    /// which the type is registered, so width and layout are read from the
    /// *same* definition.
    pub fn resolve_name(&self, scope: Option<&str>, name: &str) -> Option<String> {
        if !name.contains("::") {
            if let Some(scope) = scope {
                let scoped = format!("{scope}::{name}");
                if self.widths.contains_key(&scoped) {
                    return Some(scoped);
                }
            }
        }
        self.widths.contains_key(name).then(|| name.to_string())
    }

    /// Value and width of an enum member constant, if known.
    pub fn enum_const(&self, name: &str) -> Option<(u128, usize)> {
        self.enum_consts.get(name).copied()
    }

    /// Members (name, value) of an enum type in declaration order, when the
    /// key (as returned by [`TypeTable::resolve_name`]) names an enum.
    pub fn enum_members(&self, key: &str) -> Option<&[(String, u128)]> {
        self.enum_defs.get(key).map(Vec::as_slice)
    }

    /// Like [`TypeTable::enum_const`], preferring the enclosing scope for
    /// unqualified names.
    pub fn enum_const_in(&self, scope: Option<&str>, name: &str) -> Option<(u128, usize)> {
        self.scoped(scope, name, |t, n| t.enum_consts.get(n).copied())
    }

    /// Scope-aware lookup: an unqualified name first resolves inside the
    /// enclosing scope (`scope::name` — covering module-local typedefs and
    /// same-package references), then through the global unscoped alias.
    fn scoped<T>(
        &self,
        scope: Option<&str>,
        name: &str,
        get: impl Fn(&Self, &str) -> Option<T>,
    ) -> Option<T> {
        if !name.contains("::") {
            if let Some(scope) = scope {
                if let Some(v) = get(self, &format!("{scope}::{name}")) {
                    return Some(v);
                }
            }
        }
        get(self, name)
    }

    /// `true` when the unscoped type name was withdrawn because multiple
    /// scopes export conflicting definitions (scoped access still works).
    pub fn ambiguous_type(&self, name: &str) -> bool {
        self.poisoned_types.contains(name)
    }

    /// `true` when the unscoped enum-member name was withdrawn because
    /// multiple scopes export conflicting values.
    pub fn ambiguous_const(&self, name: &str) -> bool {
        self.poisoned_consts.contains(name)
    }

    /// Structural equality of two layouts (field names, offsets, widths, and
    /// nested layouts compared recursively — indices are not identity).
    fn layouts_equal(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        let (la, lb) = (&self.layouts[a], &self.layouts[b]);
        la.name == lb.name
            && la.width == lb.width
            && la.fields.len() == lb.fields.len()
            && la.fields.iter().zip(&lb.fields).all(|(fa, fb)| {
                fa.name == fb.name
                    && fa.offset == fb.offset
                    && fa.width == fb.width
                    && match (fa.layout, fb.layout) {
                        (None, None) => true,
                        (Some(x), Some(y)) => self.layouts_equal(x, y),
                        _ => false,
                    }
            })
    }
}

/// Facts the elaborator records as it goes, consumed by the design lint
/// ([`crate::lint`]).  They describe decisions that are sound for model
/// construction but worth surfacing to the designer: signals silently
/// modeled as free inputs, drivers that shadow each other, and the type
/// inventory the lint's enum reachability analysis needs.
#[derive(Debug, Clone, Default)]
pub struct ElabLintFacts {
    /// Non-input signals with no driver, modeled as free inputs (sound
    /// over-approximation).  Hierarchical names (`inst.sig`) for submodule
    /// signals.
    pub undriven: Vec<String>,
    /// Signals with more than one driver; the model keeps the last one and
    /// silently ignores the rest.  `(name, description of the collision)`.
    pub multiply_driven: Vec<(String, String)>,
    /// Output port names of the top module, for annotation-coverage checks.
    pub top_outputs: Vec<String>,
    /// Top-module signals with an enum type: `(signal, enum type key)` —
    /// the key looks up [`TypeTable::enum_members`].
    pub enum_signals: Vec<(String, String)>,
}

/// The elaborated design: circuit plus symbol table.
#[derive(Debug, Clone)]
pub struct ElabDesign {
    /// The sequential circuit.
    pub aig: Aig,
    /// Signal name (hierarchical, `inst.sig` for submodules) to current-cycle
    /// bits, LSB first.
    pub symbols: HashMap<String, Vec<Lit>>,
    /// Name of the elaborated top module.
    pub top: String,
    /// Names of the top-level ports that became free model inputs.
    pub free_inputs: Vec<String>,
    /// Resolved parameter values of the top module.
    pub params: HashMap<String, u128>,
    /// Resolved user-defined types (struct layouts, enum constants).
    pub types: TypeTable,
    /// Symbol name → index into [`TypeTable::layouts`] for every signal with
    /// a packed-struct type, so property compilation can lower member access
    /// (`fu_data_i.fu`) to bit slices of the flat signal.
    pub signal_types: HashMap<String, usize>,
    /// Facts recorded for the design lint ([`crate::lint`]).
    pub lint: ElabLintFacts,
}

impl ElabDesign {
    /// Looks up a signal's bits by name.
    pub fn signal(&self, name: &str) -> Option<&[Lit]> {
        self.symbols.get(name).map(Vec::as_slice)
    }

    /// The width of a signal, if present.
    pub fn width(&self, name: &str) -> Option<usize> {
        self.symbols.get(name).map(Vec::len)
    }

    /// The struct layout of a signal, when it has a struct type.
    pub fn signal_layout(&self, name: &str) -> Option<&StructLayout> {
        self.signal_types.get(name).map(|&ix| self.types.layout(ix))
    }
}

/// Elaborates `file` into an AIG.
///
/// # Errors
///
/// Returns an [`ElabError`] when the design uses constructs outside the
/// supported subset, when widths cannot be determined, or when combinational
/// cycles are detected.
pub fn elaborate(file: &SourceFile, options: &ElabOptions) -> Result<ElabDesign> {
    elaborate_budgeted(file, options, &crate::interrupt::Interrupt::none())
}

/// Like [`elaborate`], under a deadline: the interrupt is polled between
/// the elaboration phases *and inside the unbounded loops* (the typedef
/// resolution fixpoint and the per-signal resolution sweep), so a
/// pathological design — deeply recursive typedefs, enormous generated
/// signal lists — fails with a front-end deadline error instead of
/// stalling the run before any engine budget applies.
///
/// # Errors
///
/// As [`elaborate`], plus a deadline-exceeded error naming the phase the
/// budget ran out in.
pub fn elaborate_budgeted(
    file: &SourceFile,
    options: &ElabOptions,
    interrupt: &crate::interrupt::Interrupt,
) -> Result<ElabDesign> {
    let _span = crate::telemetry::span("elab", options.top.as_deref().unwrap_or(""));
    let top = match &options.top {
        Some(name) => file
            .module(name)
            .ok_or_else(|| ElabError::new(format!("top module `{name}` not found")))?,
        None => file
            .modules()
            .next()
            .ok_or_else(|| ElabError::new("source contains no modules"))?,
    };
    let (types, pkg_params) = build_type_table(file, interrupt)?;
    let mut ctx = Elaborator {
        file,
        options,
        interrupt,
        aig: Aig::new(),
        symbols: HashMap::new(),
        signal_types: HashMap::new(),
        free_inputs: Vec::new(),
        top_params: HashMap::new(),
        types,
        pkg_params,
        deps_memo: HashMap::new(),
        deps_visiting: HashSet::new(),
        lint: ElabLintFacts::default(),
    };
    let overrides: Vec<(String, u128)> = options.params.clone();
    let (mut scope, drivers, regs) = ctx.setup_scope(top, "", &overrides)?;
    ctx.finalize_module(top, &mut scope, &drivers, &regs)?;
    Ok(ElabDesign {
        aig: ctx.aig,
        symbols: ctx.symbols,
        top: top.name.clone(),
        free_inputs: ctx.free_inputs,
        params: ctx.top_params,
        types: ctx.types,
        signal_types: ctx.signal_types,
        lint: ctx.lint,
    })
}

/// Resolves every `typedef` of the file (package, file, and module scope)
/// into widths, struct layouts, and enum constants.  Also returns the
/// package parameters under their scoped names (`pkg::PARAM`) so module
/// expressions can reference them.
fn build_type_table(
    file: &SourceFile,
    interrupt: &crate::interrupt::Interrupt,
) -> Result<(TypeTable, HashMap<String, u128>)> {
    let mut table = TypeTable::default();
    let mut scoped_params: HashMap<String, u128> = HashMap::new();

    // Pass 1 — every package's parameters, in source order (a package's
    // params may reference its own earlier params or earlier packages'
    // scoped params).  Collecting them all *before* any typedef resolves
    // means typedef widths can reference any package's parameters
    // regardless of declaration order.
    for item in &file.items {
        if let svparse::ast::Item::Package(pkg) = item {
            let mut env: HashMap<String, u128> = scoped_params.clone();
            for p in &pkg.params {
                if let Some(expr) = &p.value {
                    let v = const_eval(expr, &env)?;
                    env.insert(p.name.clone(), v);
                    scoped_params.insert(format!("{}::{}", pkg.name, p.name), v);
                }
            }
        }
    }

    // Pass 2 — collect every typedef with its resolution environment.
    // (scope name, export an unscoped alias?, param env, typedef)
    type TdWork = (
        Option<String>,
        bool,
        HashMap<String, u128>,
        svparse::ast::Typedef,
    );
    let mut work: Vec<TdWork> = Vec::new();
    for item in &file.items {
        match item {
            svparse::ast::Item::Package(pkg) => {
                // All scoped params plus the package's own under bare names.
                let mut env: HashMap<String, u128> = scoped_params.clone();
                for p in &pkg.params {
                    if let Some(v) = scoped_params.get(&format!("{}::{}", pkg.name, p.name)) {
                        env.insert(p.name.clone(), *v);
                    }
                }
                for td in &pkg.typedefs {
                    work.push((Some(pkg.name.clone()), true, env.clone(), td.clone()));
                }
            }
            svparse::ast::Item::Typedef(td) => {
                work.push((None, true, scoped_params.clone(), td.clone()));
            }
            svparse::ast::Item::Module(module) => {
                // Module-scope typedefs resolve against the module's default
                // parameter values (overrides are not visible here; designs
                // that need parameterized local typedefs should hoist them
                // into a package).
                let mut env: HashMap<String, u128> = scoped_params.clone();
                for p in module.params.iter() {
                    if let Some(expr) = &p.value {
                        if let Ok(v) = const_eval(expr, &env) {
                            env.insert(p.name.clone(), v);
                        }
                    }
                }
                let mut param_names: HashSet<String> =
                    module.params.iter().map(|p| p.name.clone()).collect();
                for it in &module.items {
                    match it {
                        ModuleItem::Param(p) => {
                            param_names.insert(p.name.clone());
                            if let Some(expr) = &p.value {
                                if let Ok(v) = const_eval(expr, &env) {
                                    env.insert(p.name.clone(), v);
                                }
                            }
                        }
                        ModuleItem::Typedef(td) => {
                            // Record which module parameters the typedef
                            // depends on: its widths are resolved with the
                            // *default* values, so overriding one of these
                            // parameters must be rejected at instantiation.
                            let mut refs = Vec::new();
                            datatype_idents(&td.ty, &mut refs);
                            let sensitive: Vec<&String> =
                                refs.iter().filter(|r| param_names.contains(*r)).collect();
                            if !sensitive.is_empty() {
                                let entry = table
                                    .module_typedef_param_refs
                                    .entry(module.name.clone())
                                    .or_default();
                                entry.extend(sensitive.into_iter().cloned());
                            }
                            // Module-scope typedefs are module-local: they
                            // register under `module::name` only (no global
                            // unscoped alias), so same-named typedefs in
                            // different modules cannot collide or leak.
                            work.push((Some(module.name.clone()), false, env.clone(), td.clone()));
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    // Opaque typedefs (bodies outside the parsed subset, skipped by the
    // parser) bind no type: drop them here so only a *use* of the name
    // errors, not the mere presence of the typedef.
    work.retain(|(_, _, _, td)| {
        !(td.ty.kind == svparse::ast::NetKind::Named && td.ty.type_name.is_none())
    });
    // Count alias exporters per name so contested unscoped aliases resolve
    // only after every definition is in (see `register_type`).
    for (_, alias, _, td) in &work {
        if *alias {
            *table.alias_expected.entry(td.name.clone()).or_default() += 1;
        }
    }

    // Typedefs may reference each other (a struct field of an enum type);
    // iterate until a fixpoint, deferring entries whose named types are not
    // resolved yet.  The rounds are bounded by the typedef count, but each
    // can be large and the bound quadratic — poll the front-end deadline
    // every round.
    while !work.is_empty() {
        if interrupt.poll().is_some() {
            return Err(ElabError::new(
                "front-end deadline exceeded during typedef resolution",
            ));
        }
        let mut next: Vec<TdWork> = Vec::new();
        let before = work.len();
        for (scope, alias, env, td) in work {
            match resolve_typedef_type(&td.ty, &td.name, &env, &mut table, scope.as_deref())? {
                Some((width, layout)) => {
                    register_type(&mut table, scope.as_deref(), alias, &td.name, width, layout);
                    if td.ty.kind == svparse::ast::NetKind::Enum {
                        register_enum_members(
                            &mut table,
                            scope.as_deref(),
                            alias,
                            &td.name,
                            &td.ty,
                            width,
                            &env,
                        )?;
                    }
                }
                None => next.push((scope, alias, env, td)),
            }
        }
        if next.len() == before {
            let names: Vec<String> = next.iter().map(|(_, _, _, td)| td.name.clone()).collect();
            return Err(ElabError::new(format!(
                "could not resolve typedef(s) {names:?}: unknown or cyclic type references"
            )));
        }
        work = next;
    }
    Ok((table, scoped_params))
}

/// Attempts to resolve one typedef'd type; returns `None` when it references
/// a named type that has not been resolved yet (the caller retries).
fn resolve_typedef_type(
    ty: &DataType,
    type_name: &str,
    env: &HashMap<String, u128>,
    table: &mut TypeTable,
    scope: Option<&str>,
) -> Result<Option<(usize, Option<usize>)>> {
    use svparse::ast::NetKind;
    match ty.kind {
        NetKind::Struct => {
            // Resolve every field first; defer the whole struct if any field
            // type is still unknown.  Nested anonymous struct/enum fields
            // resolve recursively (their layouts are registered under a
            // synthesized `outer.field` name; members of nested anonymous
            // enums are not exported as constants).
            let mut resolved: Vec<(String, usize, Option<usize>)> = Vec::new();
            for field in &ty.struct_fields {
                let field_type = if matches!(field.ty.kind, NetKind::Struct | NetKind::Enum) {
                    let anon = format!("{type_name}.{}", field.name);
                    resolve_typedef_type(&field.ty, &anon, env, table, scope)?
                } else {
                    named_width(&field.ty, env, table, scope)?
                };
                match field_type {
                    Some((w, layout)) => resolved.push((field.name.clone(), w, layout)),
                    None => return Ok(None),
                }
            }
            let width: usize = resolved.iter().map(|(_, w, _)| *w).sum();
            // MSB field first: offsets count down from the top.
            let mut offset = width;
            let mut fields = Vec::with_capacity(resolved.len());
            for (name, w, layout) in resolved {
                offset -= w;
                fields.push(FieldLayout {
                    name,
                    offset,
                    width: w,
                    layout,
                });
            }
            let index = table.layouts.len();
            table.layouts.push(StructLayout {
                name: type_name.to_string(),
                width,
                fields,
            });
            Ok(Some((width, Some(index))))
        }
        NetKind::Enum => {
            let width = if ty.packed_dims.is_empty() {
                32
            } else {
                dims_width(&ty.packed_dims, env)?
            };
            Ok(Some((width, None)))
        }
        _ => named_width(ty, env, table, scope),
    }
}

/// Width (and struct layout, if any) of a non-struct/enum data type; `None`
/// when it names a type that is not in the table yet.
fn named_width(
    ty: &DataType,
    env: &HashMap<String, u128>,
    table: &TypeTable,
    scope: Option<&str>,
) -> Result<Option<(usize, Option<usize>)>> {
    use svparse::ast::NetKind;
    let (base, layout) = match ty.kind {
        NetKind::Named => {
            let name = ty.type_name.as_deref().unwrap_or("");
            match table.resolve_name(scope, name) {
                Some(key) => (
                    table.width_of(&key).expect("resolved key has a width"),
                    table.layout_index(&key),
                ),
                None if table.ambiguous_type(name) => {
                    return Err(ElabError::new(format!(
                        "type `{name}` is ambiguous: multiple packages export \
                         conflicting definitions — use a scoped reference \
                         (`pkg::{name}`)"
                    )))
                }
                None => return Ok(None),
            }
        }
        NetKind::Integer => (32, None),
        NetKind::Struct | NetKind::Enum => {
            return Err(ElabError::new(
                "anonymous struct/enum types are only supported inside typedefs",
            ))
        }
        _ => (1, None),
    };
    if ty.packed_dims.is_empty() {
        return Ok(Some((base, layout)));
    }
    let dims = dims_width(&ty.packed_dims, env)?;
    // Extra packed dimensions build an array-of-type; the element layout no
    // longer describes the whole word (regardless of the element width).
    Ok(Some((base.max(1) * dims, None)))
}

/// Collects every identifier a data type's constant expressions reference:
/// packed-dimension bounds, struct field types (recursively), and explicit
/// enum member values.
fn datatype_idents(ty: &DataType, out: &mut Vec<String>) {
    for dim in &ty.packed_dims {
        out.extend(dim.msb.referenced_idents());
        out.extend(dim.lsb.referenced_idents());
    }
    for field in &ty.struct_fields {
        datatype_idents(&field.ty, out);
    }
    for member in &ty.enum_members {
        if let Some(v) = &member.value {
            out.extend(v.referenced_idents());
        }
    }
}

fn dims_width(dims: &[svparse::ast::Range], env: &HashMap<String, u128>) -> Result<usize> {
    let mut width = 1usize;
    for dim in dims {
        let msb = const_eval(&dim.msb, env)?;
        let lsb = const_eval(&dim.lsb, env)?;
        width *= (msb.max(lsb) - msb.min(lsb) + 1) as usize;
    }
    Ok(width)
}

fn register_type(
    table: &mut TypeTable,
    scope: Option<&str>,
    alias: bool,
    name: &str,
    width: usize,
    layout: Option<usize>,
) {
    if let Some(scope) = scope {
        let scoped = format!("{scope}::{name}");
        table.widths.insert(scoped.clone(), width);
        if let Some(ix) = layout {
            table.by_name.insert(scoped, ix);
        }
    }
    if !alias {
        // Module-local typedefs stay scoped-only.
        return;
    }
    // Unscoped alias (covers `import pkg::*;` usage).  A name exported by a
    // single scope publishes immediately; a name exported by several scopes
    // is deferred until every definition has resolved — then the alias is
    // published only if all definitions agree (structurally, for structs)
    // and withdrawn ("poisoned") otherwise, so a bare reference can never
    // bind to whichever package happened to be processed first.
    let expected = table.alias_expected.get(name).copied().unwrap_or(1);
    if expected <= 1 {
        table.widths.insert(name.to_string(), width);
        if let Some(ix) = layout {
            table.by_name.insert(name.to_string(), ix);
        }
        return;
    }
    let pending = table.alias_pending.entry(name.to_string()).or_default();
    pending.push((width, layout));
    if pending.len() < expected {
        return;
    }
    let pending = table.alias_pending.remove(name).expect("just inserted");
    let (w0, l0) = pending[0];
    let agree = pending.iter().all(|&(w, l)| {
        w == w0
            && match (l0, l) {
                (None, None) => true,
                (Some(a), Some(b)) => table.layouts_equal(a, b),
                _ => false,
            }
    });
    if agree {
        table.widths.insert(name.to_string(), w0);
        if let Some(ix) = l0 {
            table.by_name.insert(name.to_string(), ix);
        }
    } else {
        table.poisoned_types.insert(name.to_string());
    }
}

fn register_enum_members(
    table: &mut TypeTable,
    scope: Option<&str>,
    alias: bool,
    type_name: &str,
    ty: &DataType,
    width: usize,
    env: &HashMap<String, u128>,
) -> Result<()> {
    let mut next_value: u128 = 0;
    let mut members: Vec<(String, u128)> = Vec::with_capacity(ty.enum_members.len());
    for member in &ty.enum_members {
        let value = match &member.value {
            Some(expr) => const_eval(expr, env)?,
            None => next_value,
        };
        if width < 128 && value >= 1u128 << width {
            return Err(ElabError::new(format!(
                "enum member `{}` has value {value}, which does not fit the \
                 {width}-bit base type",
                member.name
            )));
        }
        next_value = value + 1;
        members.push((member.name.clone(), value));
        if let Some(scope) = scope {
            table
                .enum_consts
                .insert(format!("{scope}::{}", member.name), (value, width));
        }
        if !alias {
            continue;
        }
        // Unscoped alias: identical re-definitions share it, conflicting
        // ones poison it (same policy as type names).
        if table.poisoned_consts.contains(&member.name) {
            continue;
        }
        match table.enum_consts.get(&member.name) {
            Some(&existing) if existing != (value, width) => {
                table.poisoned_consts.insert(member.name.clone());
                table.enum_consts.remove(&member.name);
            }
            _ => {
                table
                    .enum_consts
                    .insert(member.name.clone(), (value, width));
            }
        }
    }
    // The member list registers under the same keys as the type's width, so
    // a `resolve_name` result looks both up consistently.
    if let Some(scope) = scope {
        table
            .enum_defs
            .insert(format!("{scope}::{type_name}"), members.clone());
    }
    if alias {
        table.enum_defs.insert(type_name.to_string(), members);
    }
    Ok(())
}

/// A value during elaboration: a packed word or an unpacked array of words.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Val {
    Word(Vec<Lit>),
    Array(Vec<Vec<Lit>>),
}

impl Val {
    fn word(self) -> Result<Vec<Lit>> {
        match self {
            Val::Word(w) => Ok(w),
            Val::Array(_) => Err(ElabError::new("expected a packed value, found an array")),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SigKind {
    Input,
    Reg,
    Wire,
}

#[derive(Debug, Clone)]
struct SigInfo {
    width: usize,
    /// Number of unpacked elements; `None` for scalars/vectors.
    array: Option<usize>,
    kind: SigKind,
    /// Struct layout index when the signal has a packed-struct type.
    layout: Option<usize>,
}

struct Elaborator<'a> {
    file: &'a SourceFile,
    options: &'a ElabOptions,
    /// The front-end deadline guard (unarmed when no budget is set),
    /// polled inside the per-signal resolution sweep.
    interrupt: &'a crate::interrupt::Interrupt,
    aig: Aig,
    symbols: HashMap<String, Vec<Lit>>,
    /// Exported symbol name → struct layout index.
    signal_types: HashMap<String, usize>,
    free_inputs: Vec<String>,
    top_params: HashMap<String, u128>,
    types: TypeTable,
    /// Package parameters under their scoped names (`pkg::PARAM`).
    pkg_params: HashMap<String, u128>,
    /// Memoized per-module static combinational port dependencies:
    /// module name → (output port → input ports in its combinational cone).
    deps_memo: HashMap<String, Arc<HashMap<String, Vec<String>>>>,
    /// Modules currently being analysed (recursive-instantiation guard).
    deps_visiting: HashSet<String>,
    /// Facts recorded for the design lint as elaboration proceeds.
    lint: ElabLintFacts,
}

/// Per-module-instance elaboration state.
struct ModuleScope {
    prefix: String,
    params: HashMap<String, u128>,
    infos: HashMap<String, SigInfo>,
    /// Current-cycle values of signals.
    values: HashMap<String, Val>,
    /// In-progress evaluations (combinational loop detection; both local
    /// signal names and `inst.port` markers for instance outputs).
    in_progress: HashSet<String>,
    /// Lazily created child-instance states, keyed by module-item index.
    instances: HashMap<usize, InstanceState>,
}

/// Elaboration state of one child module instance.
///
/// Instances are elaborated **per output**: when the parent needs output
/// `port`, only the parent expressions feeding that output's static input
/// cone are evaluated first, so a combinational path through the instance
/// that is acyclic per-port no longer reports a false combinational cycle.
/// The rest of the child (remaining inputs, unread signals, the sequential
/// update, symbol export) is completed in [`Elaborator::finalize_instances`]
/// once the parent's combinational resolution is done.
struct InstanceState {
    module: Module,
    inst_name: String,
    scope: ModuleScope,
    drivers: HashMap<String, Driver>,
    regs: Vec<String>,
    /// Static per-output input-cone map of the child module (shared).
    deps: Arc<HashMap<String, Vec<String>>>,
    /// Connected input ports (clock/reset excluded) → parent expression.
    conns_in: HashMap<String, Expr>,
    finalized: bool,
}

#[derive(Debug, Clone)]
enum Driver {
    /// `assign lhs = expr` — index of the module item.
    Assign(usize),
    /// A declaration initializer `wire x = expr;` — item index and declarator
    /// index within the declaration.
    DeclInit(usize, usize),
    /// Driven inside an `always_comb`/`always @*` block (item index).
    Comb(usize),
    /// Driven by an instance output (item index, port name).
    Instance(usize, String),
}

impl<'a> Elaborator<'a> {
    /// Builds the elaboration scope of one module instance: resolved
    /// parameters, the signal inventory, driver classification, tied
    /// clock/reset, top-level free inputs, and the register latches with
    /// their reset-derived initial values.  Input ports of non-top instances
    /// stay unbound here; [`Elaborator::ensure_instance`] binds them.
    fn setup_scope(
        &mut self,
        module: &Module,
        prefix: &str,
        param_overrides: &[(String, u128)],
    ) -> Result<(ModuleScope, HashMap<String, Driver>, Vec<String>)> {
        // Module-scope typedefs were resolved against the module's *default*
        // parameter values; an override touching one of them would silently
        // change signal widths underneath the type table, so reject it.
        if let Some(refs) = self.types.module_typedef_param_refs.get(&module.name) {
            if let Some((name, _)) = param_overrides.iter().find(|(n, _)| refs.contains(n)) {
                return Err(ElabError::new(format!(
                    "parameter override `{name}` of `{}` affects a module-scope typedef, \
                     whose width is fixed at the default parameter values — hoist the \
                     typedef (and its parameters) into a package",
                    module.name
                )));
            }
        }

        // ------------------------------------------------------------------
        // Parameters (package parameters visible under their scoped names).
        // ------------------------------------------------------------------
        let mut params: HashMap<String, u128> = self.pkg_params.clone();
        for p in &module.params {
            let value = match param_overrides.iter().find(|(n, _)| n == &p.name) {
                Some((_, v)) => *v,
                None => match &p.value {
                    Some(expr) => const_eval(expr, &params)?,
                    None => {
                        return Err(ElabError::new(format!(
                            "parameter `{}` of `{}` has no value",
                            p.name, module.name
                        )))
                    }
                },
            };
            params.insert(p.name.clone(), value);
        }
        for item in &module.items {
            if let ModuleItem::Param(p) = item {
                if let Some(expr) = &p.value {
                    let value = const_eval(expr, &params)?;
                    params.insert(p.name.clone(), value);
                }
            }
        }
        if prefix.is_empty() {
            self.top_params = params.clone();
        }

        // ------------------------------------------------------------------
        // Signal inventory and driver classification.
        // ------------------------------------------------------------------
        let mut scope = ModuleScope {
            prefix: prefix.to_string(),
            params,
            infos: HashMap::new(),
            values: HashMap::new(),
            in_progress: HashSet::new(),
            instances: HashMap::new(),
        };

        for port in &module.ports {
            let (width, layout) = self.resolve_type(&port.ty, &scope.params, &module.name)?;
            let array = self.array_len(&port.unpacked_dims, &scope.params)?;
            let kind = match port.direction {
                Direction::Input => SigKind::Input,
                Direction::Output | Direction::Inout => SigKind::Wire,
            };
            if prefix.is_empty() {
                if port.direction == Direction::Output {
                    self.lint.top_outputs.push(port.name.clone());
                }
                self.record_enum_signal(&port.name, &port.ty, &module.name);
            }
            scope.infos.insert(
                port.name.clone(),
                SigInfo {
                    width,
                    array,
                    kind,
                    layout,
                },
            );
        }
        for item in &module.items {
            if let ModuleItem::Decl(decl) = item {
                let (width, layout) = self.resolve_type(&decl.ty, &scope.params, &module.name)?;
                for name in &decl.names {
                    let array = self.array_len(&name.unpacked_dims, &scope.params)?;
                    if prefix.is_empty() {
                        self.record_enum_signal(&name.name, &decl.ty, &module.name);
                    }
                    scope.infos.entry(name.name.clone()).or_insert(SigInfo {
                        width,
                        array,
                        kind: SigKind::Wire,
                        layout,
                    });
                }
            }
        }

        // Registers: targets of non-blocking assignments in always_ff.  A
        // register wholly assigned from two distinct sequential blocks is
        // multiply-driven (first block index per register is remembered).
        let mut reg_names: Vec<String> = Vec::new();
        let mut seq_block: HashMap<String, usize> = HashMap::new();
        for (idx, item) in module.items.iter().enumerate() {
            if let ModuleItem::Always(block) = item {
                if is_sequential(block) {
                    let mut whole = Vec::new();
                    collect_whole_assign_targets(&block.body, &mut whole);
                    for t in whole {
                        match seq_block.get(&t) {
                            Some(&first) if first != idx => {
                                self.lint.multiply_driven.push((
                                    format!("{prefix}{t}"),
                                    "two sequential always blocks".to_string(),
                                ));
                            }
                            Some(_) => {}
                            None => {
                                seq_block.insert(t, idx);
                            }
                        }
                    }
                    let mut targets = Vec::new();
                    collect_assign_targets(&block.body, false, &mut targets);
                    for t in targets {
                        if let Some(info) = scope.infos.get_mut(&t) {
                            if info.kind != SigKind::Input {
                                info.kind = SigKind::Reg;
                                if !reg_names.contains(&t) {
                                    reg_names.push(t);
                                }
                            }
                        }
                    }
                }
            }
        }

        let drivers: HashMap<String, Driver> = {
            // Collisions between *whole-signal* drivers are multiply-driven;
            // the last driver wins in the map (unchanged semantics) while the
            // lint records both sides.
            let mut whole_by: HashMap<String, usize> = HashMap::new();
            let mut collisions: Vec<(String, String)> = Vec::new();
            let note_whole = |whole_by: &mut HashMap<String, usize>,
                              collisions: &mut Vec<(String, String)>,
                              target: &str,
                              idx: usize,
                              desc: &str| {
                match whole_by.get(target) {
                    Some(&first) if first != idx => collisions.push((
                        format!("{prefix}{target}"),
                        format!("{} and {desc}", driver_desc(&module.items[first])),
                    )),
                    Some(_) => {}
                    None => {
                        whole_by.insert(target.to_string(), idx);
                    }
                }
            };
            let mut map = HashMap::new();
            for (idx, item) in module.items.iter().enumerate() {
                match item {
                    ModuleItem::ContinuousAssign(assign) => {
                        for target in whole_lvalue_targets(&assign.lhs) {
                            note_whole(
                                &mut whole_by,
                                &mut collisions,
                                &target,
                                idx,
                                "a continuous assign",
                            );
                        }
                        for target in lvalue_targets(&assign.lhs) {
                            map.insert(target, Driver::Assign(idx));
                        }
                    }
                    ModuleItem::Decl(decl) => {
                        for (di, name) in decl.names.iter().enumerate() {
                            if name.init.is_some() {
                                note_whole(
                                    &mut whole_by,
                                    &mut collisions,
                                    &name.name,
                                    idx,
                                    "a declaration initializer",
                                );
                                map.insert(name.name.clone(), Driver::DeclInit(idx, di));
                            }
                        }
                    }
                    ModuleItem::Always(block) if !is_sequential(block) => {
                        let mut whole = Vec::new();
                        collect_whole_assign_targets(&block.body, &mut whole);
                        whole.dedup();
                        for t in &whole {
                            note_whole(
                                &mut whole_by,
                                &mut collisions,
                                t,
                                idx,
                                "a combinational always block",
                            );
                        }
                        let mut targets = Vec::new();
                        collect_assign_targets(&block.body, true, &mut targets);
                        for t in targets {
                            map.insert(t, Driver::Comb(idx));
                        }
                    }
                    ModuleItem::Instance(inst) => {
                        // The instantiated module's port directions determine
                        // which connections drive parent signals.
                        if let Some(child) = self.file.module(&inst.module_name) {
                            for conn in &inst.connections {
                                if let (Some(expr), Some(port)) =
                                    (&conn.expr, child.port(&conn.name))
                                {
                                    if port.direction == Direction::Output {
                                        if let Some(name) = expr.as_ident() {
                                            note_whole(
                                                &mut whole_by,
                                                &mut collisions,
                                                name,
                                                idx,
                                                "an instance output",
                                            );
                                            map.insert(
                                                name.to_string(),
                                                Driver::Instance(idx, conn.name.clone()),
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            // A register (sequential target) that also has a combinational
            // driver is multiply-driven too.
            for (target, &idx) in &whole_by {
                if seq_block.contains_key(target) {
                    collisions.push((
                        format!("{prefix}{target}"),
                        format!(
                            "a sequential always block and {}",
                            driver_desc(&module.items[idx])
                        ),
                    ));
                }
            }
            collisions.sort();
            self.lint.multiply_driven.extend(collisions);
            map
        };

        // ------------------------------------------------------------------
        // Tie clock/reset; top-level inputs become free model inputs.
        // ------------------------------------------------------------------
        let is_top = prefix.is_empty();
        for port in &module.ports {
            let name = &port.name;
            let info = scope.infos.get(name).expect("port info").clone();
            if port.direction != Direction::Input {
                continue;
            }
            if name == &self.options.clock {
                scope
                    .values
                    .insert(name.clone(), Val::Word(vec![Lit::FALSE]));
                continue;
            }
            if name == &self.options.reset {
                let inactive = if self.options.reset_active_low {
                    Lit::TRUE
                } else {
                    Lit::FALSE
                };
                scope.values.insert(name.clone(), Val::Word(vec![inactive]));
                continue;
            }
            if is_top {
                let bits = self.new_inputs(&format!("{prefix}{name}"), info.width);
                self.free_inputs.push(name.clone());
                scope.values.insert(name.clone(), Val::Word(bits));
            }
        }

        // Latches for registers.  Initial values come from the reset branches
        // of the always_ff blocks; default is zero.
        let mut init_values: HashMap<String, u128> = HashMap::new();
        let mut init_array_values: HashMap<String, Vec<u128>> = HashMap::new();
        for item in &module.items {
            if let ModuleItem::Always(block) = item {
                if is_sequential(block) {
                    self.collect_reset_inits(
                        block,
                        &scope.params,
                        &mut init_values,
                        &mut init_array_values,
                    )?;
                }
            }
        }
        for name in &reg_names {
            let info = scope.infos.get(name).expect("reg info").clone();
            match info.array {
                None => {
                    let init = init_values.get(name).copied().unwrap_or(0);
                    let bits = self.new_latches(&format!("{prefix}{name}"), info.width, init);
                    scope.values.insert(name.clone(), Val::Word(bits));
                }
                Some(len) => {
                    let inits = init_array_values
                        .get(name)
                        .cloned()
                        .unwrap_or_else(|| vec![init_values.get(name).copied().unwrap_or(0); len]);
                    let elems: Vec<Vec<Lit>> = (0..len)
                        .map(|i| {
                            let init = inits.get(i).copied().unwrap_or(0);
                            self.new_latches(&format!("{prefix}{name}[{i}]"), info.width, init)
                        })
                        .collect();
                    scope.values.insert(name.clone(), Val::Array(elems));
                }
            }
        }

        Ok((scope, drivers, reg_names))
    }

    /// Completes a module whose scope is set up: resolves every signal,
    /// finalizes child instances, wires the latch next-state functions, and
    /// exports the symbol table.
    fn finalize_module(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        regs: &[String],
    ) -> Result<()> {
        // Resolution order fixes the AIG node numbering, and hash-map key
        // order is randomized per process — sort so the compiled model (and
        // therefore every slice fingerprint keying the on-disk proof cache)
        // is byte-stable across processes.
        let mut all_names: Vec<String> = scope.infos.keys().cloned().collect();
        all_names.sort_unstable();
        // Each resolution can recurse through a whole combinational cone;
        // generated designs make this list arbitrarily long, so the
        // front-end deadline is polled per signal.
        for name in &all_names {
            if self.interrupt.poll().is_some() {
                return Err(ElabError::new(
                    "front-end deadline exceeded during signal resolution",
                ));
            }
            self.resolve_signal(module, scope, drivers, name)?;
        }
        self.finalize_instances(module, scope, drivers)?;
        self.sequential_update(module, scope, drivers, regs)?;
        self.export_symbols(scope);
        Ok(())
    }

    /// Computes next-state values of the registers and wires the latches.
    fn sequential_update(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        regs: &[String],
    ) -> Result<()> {
        let mut next_values: HashMap<String, Val> = HashMap::new();
        for name in regs {
            next_values.insert(name.clone(), scope.values[name].clone());
        }
        for item in &module.items {
            if let ModuleItem::Always(block) = item {
                if is_sequential(block) {
                    let update = self.strip_reset_branch(block)?;
                    self.exec_stmt(module, scope, drivers, &update, Lit::TRUE, &mut next_values)?;
                }
            }
        }
        for name in regs {
            let current = scope.values[name].clone();
            let next = next_values[name].clone();
            match (current, next) {
                (Val::Word(cur), Val::Word(next)) => {
                    let next = words::resize(&next, cur.len());
                    for (c, n) in cur.iter().zip(next.iter()) {
                        self.aig.set_latch_next(*c, *n);
                    }
                }
                (Val::Array(cur), Val::Array(next)) => {
                    for (ce, ne) in cur.iter().zip(next.iter()) {
                        let ne = words::resize(ne, ce.len());
                        for (c, n) in ce.iter().zip(ne.iter()) {
                            self.aig.set_latch_next(*c, *n);
                        }
                    }
                }
                _ => {
                    return Err(ElabError::new(format!(
                        "register `{name}` mixes array and scalar forms"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Exports every resolved signal of the scope into the global symbol
    /// table (with the hierarchical prefix) and records struct-typed signals
    /// in the signal-type map.
    fn export_symbols(&mut self, scope: &ModuleScope) {
        let prefix = &scope.prefix;
        for (name, value) in &scope.values {
            match value {
                Val::Word(bits) => {
                    self.symbols.insert(format!("{prefix}{name}"), bits.clone());
                }
                Val::Array(elems) => {
                    for (i, bits) in elems.iter().enumerate() {
                        self.symbols
                            .insert(format!("{prefix}{name}[{i}]"), bits.clone());
                    }
                }
            }
            if let Some(info) = scope.infos.get(name) {
                if let Some(layout) = info.layout {
                    self.signal_types.insert(format!("{prefix}{name}"), layout);
                }
            }
        }
    }

    /// Creates (if needed) the elaboration state of the instance at module
    /// item `idx`: child parameters, scope, latches, and free inputs for
    /// unconnected input ports.  Connected inputs stay lazy.
    fn ensure_instance(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        idx: usize,
    ) -> Result<()> {
        if scope.instances.contains_key(&idx) {
            return Ok(());
        }
        let inst = match &module.items[idx] {
            ModuleItem::Instance(i) => i.clone(),
            _ => unreachable!("instance index mismatch"),
        };
        let child = self
            .file
            .module(&inst.module_name)
            .ok_or_else(|| ElabError::new(format!("module `{}` not found", inst.module_name)))?
            .clone();
        let mut overrides = Vec::new();
        for conn in &inst.param_overrides {
            if let Some(expr) = &conn.expr {
                overrides.push((conn.name.clone(), const_eval(expr, &scope.params)?));
            }
        }
        let child_prefix = format!("{}{}.", scope.prefix, inst.instance_name);
        let (mut cscope, cdrivers, cregs) = self.setup_scope(&child, &child_prefix, &overrides)?;

        let mut conns_in: HashMap<String, Expr> = HashMap::new();
        for conn in &inst.connections {
            if let (Some(expr), Some(port)) = (&conn.expr, child.port(&conn.name)) {
                if port.direction == Direction::Input
                    && conn.name != self.options.clock
                    && conn.name != self.options.reset
                {
                    conns_in.insert(conn.name.clone(), expr.clone());
                }
            }
        }
        // Unconnected submodule inputs: free inputs (the sound
        // over-approximation for missing environment), created now so the
        // AIG numbering only depends on the deterministic demand order.
        for port in &child.ports {
            if port.direction != Direction::Input
                || port.name == self.options.clock
                || port.name == self.options.reset
                || conns_in.contains_key(&port.name)
                || cscope.values.contains_key(&port.name)
            {
                continue;
            }
            let width = cscope.infos.get(&port.name).expect("port info").width;
            let bits = self.new_inputs(&format!("{child_prefix}{}", port.name), width);
            cscope.values.insert(port.name.clone(), Val::Word(bits));
        }

        let deps = self.module_comb_deps(&inst.module_name)?;
        scope.instances.insert(
            idx,
            InstanceState {
                module: child,
                inst_name: inst.instance_name.clone(),
                scope: cscope,
                drivers: cdrivers,
                regs: cregs,
                deps,
                conns_in,
                finalized: false,
            },
        );
        Ok(())
    }

    /// Resolves one output of a child instance, evaluating only the parent
    /// expressions feeding that output's static combinational input cone —
    /// so instance paths that are acyclic per-port elaborate even when the
    /// instance as a whole participates in a (port-disjoint) feedback loop.
    fn instance_output(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        idx: usize,
        port: &str,
    ) -> Result<Vec<Lit>> {
        self.ensure_instance(module, scope, idx)?;
        let (needed, inst_name) = {
            let st = scope.instances.get(&idx).expect("instance state");
            (
                st.deps.get(port).cloned().unwrap_or_default(),
                st.inst_name.clone(),
            )
        };
        // Port-granular cycle detection: the marker contains a `.`, so it
        // cannot collide with a local signal name.
        let marker = format!("{inst_name}.{port}");
        if !scope.in_progress.insert(marker.clone()) {
            return Err(ElabError::new(format!(
                "combinational cycle through output `{port}` of instance `{inst_name}`"
            )));
        }
        for input in &needed {
            let expr = {
                let st = scope.instances.get(&idx).expect("instance state");
                if st.scope.values.contains_key(input) {
                    continue;
                }
                st.conns_in.get(input).cloned()
            };
            // Inputs without a connection were freed in ensure_instance.
            let Some(expr) = expr else { continue };
            let result = self.eval_expr(module, scope, drivers, &expr);
            let bits = match result {
                Ok(v) => v.word()?,
                Err(e) => {
                    scope.in_progress.remove(&marker);
                    return Err(e);
                }
            };
            let st = scope.instances.get_mut(&idx).expect("instance state");
            let width = st
                .scope
                .infos
                .get(input)
                .map(|i| i.width)
                .unwrap_or(bits.len());
            st.scope
                .values
                .insert(input.clone(), Val::Word(words::resize(&bits, width)));
        }
        // The child resolution below is self-contained (its input cone is
        // pre-resolved), so the state can be checked out without blocking
        // re-entrant resolution of *other* outputs of this instance.
        let mut st = scope.instances.remove(&idx).expect("instance state");
        let result = self.resolve_signal(&st.module, &mut st.scope, &st.drivers, port);
        scope.instances.insert(idx, st);
        scope.in_progress.remove(&marker);
        result?.word()
    }

    /// Completes every child instance of the scope: evaluates the remaining
    /// connected inputs, resolves all child signals, recurses into
    /// grandchildren, runs the child's sequential update, and exports its
    /// symbols.
    fn finalize_instances(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
    ) -> Result<()> {
        for idx in 0..module.items.len() {
            if !matches!(module.items[idx], ModuleItem::Instance(_)) {
                continue;
            }
            self.ensure_instance(module, scope, idx)?;
            // Remaining connected inputs (not demanded by any output cone),
            // evaluated in sorted order for deterministic node numbering.
            let pending: Vec<(String, Expr)> = {
                let st = scope.instances.get(&idx).expect("instance state");
                let mut v: Vec<(String, Expr)> = st
                    .conns_in
                    .iter()
                    .filter(|(p, _)| !st.scope.values.contains_key(*p))
                    .map(|(p, e)| (p.clone(), e.clone()))
                    .collect();
                v.sort_by(|a, b| a.0.cmp(&b.0));
                v
            };
            for (port, expr) in pending {
                let bits = self.eval_expr(module, scope, drivers, &expr)?.word()?;
                let st = scope.instances.get_mut(&idx).expect("instance state");
                let width = st
                    .scope
                    .infos
                    .get(&port)
                    .map(|i| i.width)
                    .unwrap_or(bits.len());
                st.scope
                    .values
                    .insert(port, Val::Word(words::resize(&bits, width)));
            }
            let mut st = scope.instances.remove(&idx).expect("instance state");
            let result = if st.finalized {
                Ok(())
            } else {
                st.finalized = true;
                let regs = st.regs.clone();
                self.finalize_module(&st.module, &mut st.scope, &st.drivers, &regs)
            };
            scope.instances.insert(idx, st);
            result?;
        }
        Ok(())
    }

    /// Static per-output combinational input dependencies of a module:
    /// `output port → input ports that may feed it combinationally`.
    ///
    /// The analysis runs on the AST (before elaboration) and
    /// over-approximates: every identifier referenced by a driver counts as
    /// a dependency, registers cut the traversal, and nested instances
    /// contribute the connected expressions of their own (recursively
    /// computed) per-output cones.  Over-approximation is safe — at worst an
    /// input is evaluated earlier than strictly necessary — while an
    /// under-approximation would mis-order elaboration.
    fn module_comb_deps(&mut self, name: &str) -> Result<Arc<HashMap<String, Vec<String>>>> {
        if let Some(deps) = self.deps_memo.get(name) {
            return Ok(deps.clone());
        }
        if !self.deps_visiting.insert(name.to_string()) {
            return Err(ElabError::new(format!(
                "recursive instantiation of module `{name}`"
            )));
        }
        let module = self
            .file
            .module(name)
            .ok_or_else(|| ElabError::new(format!("module `{name}` not found")))?
            .clone();

        // Registers cut combinational dependencies.
        let mut seq_targets: HashSet<String> = HashSet::new();
        for item in &module.items {
            if let ModuleItem::Always(block) = item {
                if is_sequential(block) {
                    let mut targets = Vec::new();
                    collect_assign_targets(&block.body, false, &mut targets);
                    seq_targets.extend(targets);
                }
            }
        }

        let mut graph: HashMap<String, Vec<String>> = HashMap::new();
        let add_edges = |graph: &mut HashMap<String, Vec<String>>, t: String, deps: &[String]| {
            graph.entry(t).or_default().extend(deps.iter().cloned());
        };
        for item in &module.items {
            match item {
                ModuleItem::Decl(decl) => {
                    for d in &decl.names {
                        if let Some(init) = &d.init {
                            add_edges(&mut graph, d.name.clone(), &init.referenced_idents());
                        }
                    }
                }
                ModuleItem::ContinuousAssign(assign) => {
                    let mut deps = assign.rhs.referenced_idents();
                    deps.extend(assign.lhs.referenced_idents());
                    for t in lvalue_targets(&assign.lhs) {
                        add_edges(&mut graph, t, &deps);
                    }
                }
                ModuleItem::Always(block) if !is_sequential(block) => {
                    let mut targets = Vec::new();
                    collect_assign_targets(&block.body, true, &mut targets);
                    let mut deps = Vec::new();
                    collect_stmt_idents(&block.body, &mut deps);
                    for t in targets {
                        add_edges(&mut graph, t, &deps);
                    }
                }
                ModuleItem::Instance(inst) => {
                    let child_deps = self.module_comb_deps(&inst.module_name)?;
                    for conn in &inst.connections {
                        let Some(target) = conn.expr.as_ref().and_then(|e| e.as_ident()) else {
                            continue;
                        };
                        let Some(needed) = child_deps.get(&conn.name) else {
                            continue;
                        };
                        let mut deps = Vec::new();
                        for input in needed {
                            if let Some(c) = inst.connections.iter().find(|c| &c.name == input) {
                                if let Some(e) = &c.expr {
                                    deps.extend(e.referenced_idents());
                                }
                            }
                        }
                        add_edges(&mut graph, target.to_string(), &deps);
                    }
                }
                _ => {}
            }
        }
        for t in &seq_targets {
            graph.remove(t);
        }

        let input_ports: HashSet<&str> = module
            .ports
            .iter()
            .filter(|p| p.direction == Direction::Input)
            .map(|p| p.name.as_str())
            .collect();
        let mut result: HashMap<String, Vec<String>> = HashMap::new();
        for port in &module.ports {
            if port.direction != Direction::Output {
                continue;
            }
            let mut reached: HashSet<String> = HashSet::new();
            let mut visited: HashSet<String> = HashSet::new();
            let mut stack = vec![port.name.clone()];
            while let Some(sig) = stack.pop() {
                if !visited.insert(sig.clone()) {
                    continue;
                }
                if input_ports.contains(sig.as_str()) {
                    reached.insert(sig.clone());
                }
                if let Some(next) = graph.get(&sig) {
                    stack.extend(next.iter().cloned());
                }
            }
            let mut cone: Vec<String> = reached.into_iter().collect();
            cone.sort_unstable();
            result.insert(port.name.clone(), cone);
        }

        self.deps_visiting.remove(name);
        let arc = Arc::new(result);
        self.deps_memo.insert(name.to_string(), arc.clone());
        Ok(arc)
    }

    fn new_inputs(&mut self, name: &str, width: usize) -> Vec<Lit> {
        (0..width)
            .map(|i| {
                if width == 1 {
                    self.aig.add_input(name.to_string())
                } else {
                    self.aig.add_input(format!("{name}[{i}]"))
                }
            })
            .collect()
    }

    fn new_latches(&mut self, name: &str, width: usize, init: u128) -> Vec<Lit> {
        (0..width)
            .map(|i| {
                let bit_init = (init >> i) & 1 == 1;
                let bit_name = if width == 1 {
                    name.to_string()
                } else {
                    format!("{name}[{i}]")
                };
                self.aig.add_latch(bit_name, bit_init)
            })
            .collect()
    }

    /// Width and (for struct types) layout index of a declared type.
    ///
    /// Named (and anonymous struct/enum) types share [`named_width`] with
    /// the typedef resolver; the plain-vector fallback keeps the legacy
    /// rule that every non-named scalar (including `integer`, used for
    /// genvars) is 1 bit wide in the model.
    fn resolve_type(
        &self,
        ty: &DataType,
        params: &HashMap<String, u128>,
        scope: &str,
    ) -> Result<(usize, Option<usize>)> {
        use svparse::ast::NetKind;
        if matches!(ty.kind, NetKind::Named | NetKind::Struct | NetKind::Enum) {
            return named_width(ty, params, &self.types, Some(scope))?.ok_or_else(|| {
                ElabError::new(format!(
                    "unknown type `{}` (no matching typedef)",
                    ty.type_name.as_deref().unwrap_or("")
                ))
            });
        }
        if ty.packed_dims.is_empty() {
            return Ok((1, None));
        }
        Ok((dims_width(&ty.packed_dims, params)?, None))
    }

    fn array_len(
        &self,
        dims: &[svparse::ast::Range],
        params: &HashMap<String, u128>,
    ) -> Result<Option<usize>> {
        if dims.is_empty() {
            return Ok(None);
        }
        let dim = &dims[0];
        let msb = const_eval(&dim.msb, params)?;
        let lsb = const_eval(&dim.lsb, params)?;
        Ok(Some((msb.max(lsb) - msb.min(lsb) + 1) as usize))
    }

    /// Records `signal` as enum-typed (with its resolved type-table key) when
    /// its declared type names an enum typedef — the unreachable-enum-state
    /// lint checks which members the design source actually mentions.
    fn record_enum_signal(&mut self, signal: &str, ty: &DataType, module_name: &str) {
        use svparse::ast::NetKind;
        if ty.kind != NetKind::Named {
            return;
        }
        let Some(type_name) = ty.type_name.as_deref() else {
            return;
        };
        let Some(key) = self.types.resolve_name(Some(module_name), type_name) else {
            return;
        };
        if self.types.enum_members(&key).is_some() {
            self.lint.enum_signals.push((signal.to_string(), key));
        }
    }

    /// Resolves the current-cycle value of a signal, evaluating its driver if
    /// needed.
    fn resolve_signal(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        name: &str,
    ) -> Result<Val> {
        if let Some(v) = scope.values.get(name) {
            return Ok(v.clone());
        }
        if !scope.in_progress.insert(name.to_string()) {
            return Err(ElabError::new(format!(
                "combinational cycle through signal `{name}`"
            )));
        }
        let info = scope
            .infos
            .get(name)
            .cloned()
            .ok_or_else(|| ElabError::new(format!("unknown signal `{name}`")))?;
        let value = match drivers.get(name).cloned() {
            Some(Driver::DeclInit(idx, di)) => {
                let init = match &module.items[idx] {
                    ModuleItem::Decl(d) => d.names[di].init.clone().expect("declared initializer"),
                    _ => unreachable!("driver index mismatch"),
                };
                let bits = self.eval_expr(module, scope, drivers, &init)?.word()?;
                Val::Word(words::resize(&bits, info.width))
            }
            Some(Driver::Assign(idx)) => {
                let assign = match &module.items[idx] {
                    ModuleItem::ContinuousAssign(a) => a,
                    _ => unreachable!("driver index mismatch"),
                };
                // Initialise the target with zeros, execute the single
                // assignment, and read the result back — this handles partial
                // (bit/element) targets uniformly.
                let mut env: HashMap<String, Val> = HashMap::new();
                env.insert(name.to_string(), default_value(&info));
                let stmt = Stmt::Blocking(assign.clone());
                self.exec_stmt(module, scope, drivers, &stmt, Lit::TRUE, &mut env)?;
                env.remove(name).expect("assigned value")
            }
            Some(Driver::Comb(idx)) => {
                let block = match &module.items[idx] {
                    ModuleItem::Always(b) => b.clone(),
                    _ => unreachable!("driver index mismatch"),
                };
                let mut targets = Vec::new();
                collect_assign_targets(&block.body, true, &mut targets);
                let mut env: HashMap<String, Val> = HashMap::new();
                for t in &targets {
                    if let Some(ti) = scope.infos.get(t) {
                        env.insert(t.clone(), default_value(ti));
                    }
                }
                self.exec_stmt(module, scope, drivers, &block.body, Lit::TRUE, &mut env)?;
                // Publish every signal computed by this block.
                let result = env
                    .get(name)
                    .cloned()
                    .ok_or_else(|| ElabError::new(format!("block does not assign `{name}`")))?;
                for (t, v) in env {
                    if t != name {
                        scope.values.entry(t).or_insert(v);
                    }
                }
                result
            }
            Some(Driver::Instance(idx, port)) => {
                let bits = self.instance_output(module, scope, drivers, idx, &port)?;
                Val::Word(words::resize(&bits, info.width))
            }
            None => {
                if info.kind == SigKind::Input {
                    // Input ports are pre-bound (top-level free inputs, tied
                    // clock/reset, instance connections, or the free inputs
                    // of unconnected ports); reaching one here means the
                    // static instance cone under-approximated the real
                    // dependencies.
                    return Err(ElabError::new(format!(
                        "internal: input port `{name}` demanded before it was bound \
                         (instance dependency cone under-approximated)"
                    )));
                }
                // Undriven: free input (sound over-approximation).
                let prefix = scope.prefix.clone();
                self.lint.undriven.push(format!("{prefix}{name}"));
                match info.array {
                    None => Val::Word(self.new_inputs(&format!("{prefix}{name}"), info.width)),
                    Some(len) => Val::Array(
                        (0..len)
                            .map(|i| self.new_inputs(&format!("{prefix}{name}[{i}]"), info.width))
                            .collect(),
                    ),
                }
            }
        };
        scope.in_progress.remove(name);
        scope.values.insert(name.to_string(), value.clone());
        Ok(value)
    }

    /// Extracts initial values from the reset branch of a sequential block.
    fn collect_reset_inits(
        &self,
        block: &AlwaysBlock,
        params: &HashMap<String, u128>,
        inits: &mut HashMap<String, u128>,
        array_inits: &mut HashMap<String, Vec<u128>>,
    ) -> Result<()> {
        let Some((reset_branch, _)) = self.split_reset(block) else {
            return Ok(());
        };
        collect_const_assigns(&reset_branch, params, inits, array_inits);
        Ok(())
    }

    /// Splits a sequential block into (reset branch, update branch) when it
    /// follows the `if (!rst) ... else ...` idiom.
    fn split_reset(&self, block: &AlwaysBlock) -> Option<(Stmt, Stmt)> {
        let body = match &block.body {
            Stmt::Block(stmts) if stmts.len() == 1 => &stmts[0],
            other => other,
        };
        if let Stmt::If {
            cond,
            then_branch,
            else_branch,
        } = body
        {
            if expr_is_reset_condition(cond, &self.options.reset, self.options.reset_active_low) {
                let update = else_branch
                    .as_ref()
                    .map(|b| (**b).clone())
                    .unwrap_or(Stmt::Empty);
                return Some(((**then_branch).clone(), update));
            }
        }
        None
    }

    /// Returns the update (non-reset) portion of a sequential block.
    fn strip_reset_branch(&self, block: &AlwaysBlock) -> Result<Stmt> {
        match self.split_reset(block) {
            Some((_, update)) => Ok(update),
            None => Ok(block.body.clone()),
        }
    }

    /// Symbolically executes a statement, updating `env` (the map of assigned
    /// signals) under the path condition `cond`.
    fn exec_stmt(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        stmt: &Stmt,
        cond: Lit,
        env: &mut HashMap<String, Val>,
    ) -> Result<()> {
        match stmt {
            Stmt::Empty => Ok(()),
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.exec_stmt(module, scope, drivers, s, cond, env)?;
                }
                Ok(())
            }
            Stmt::Blocking(assign) | Stmt::NonBlocking(assign) => {
                let rhs = self.eval_expr_env(module, scope, drivers, &assign.rhs, env)?;
                self.assign_lvalue(module, scope, drivers, &assign.lhs, rhs, cond, env)
            }
            Stmt::If {
                cond: c,
                then_branch,
                else_branch,
            } => {
                let c_bits = self.eval_expr_env(module, scope, drivers, c, env)?.word()?;
                let c_lit = words::reduce_or(&mut self.aig, &c_bits);
                let then_cond = self.aig.and(cond, c_lit);
                self.exec_stmt(module, scope, drivers, then_branch, then_cond, env)?;
                if let Some(else_branch) = else_branch {
                    let not_c = c_lit.invert();
                    let else_cond = self.aig.and(cond, not_c);
                    self.exec_stmt(module, scope, drivers, else_branch, else_cond, env)?;
                }
                Ok(())
            }
            Stmt::Case { subject, items } => {
                let subject_bits = self
                    .eval_expr_env(module, scope, drivers, subject, env)?
                    .word()?;
                let mut matched_any = Lit::FALSE;
                let mut default_item: Option<&CaseItem> = None;
                for item in items {
                    if item.is_default {
                        default_item = Some(item);
                        continue;
                    }
                    let mut this_match = Lit::FALSE;
                    for label in &item.labels {
                        let label_bits = self
                            .eval_expr_env(module, scope, drivers, label, env)?
                            .word()?;
                        let m = words::eq(&mut self.aig, &subject_bits, &label_bits);
                        this_match = self.aig.or(this_match, m);
                    }
                    let not_prev = matched_any.invert();
                    let first_match = self.aig.and(this_match, not_prev);
                    let item_cond = self.aig.and(cond, first_match);
                    self.exec_stmt(module, scope, drivers, &item.body, item_cond, env)?;
                    matched_any = self.aig.or(matched_any, this_match);
                }
                if let Some(item) = default_item {
                    let not_matched = matched_any.invert();
                    let item_cond = self.aig.and(cond, not_matched);
                    self.exec_stmt(module, scope, drivers, &item.body, item_cond, env)?;
                }
                Ok(())
            }
        }
    }

    /// Assigns `rhs` to an lvalue under path condition `cond`.
    #[allow(clippy::too_many_arguments)]
    fn assign_lvalue(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        lhs: &Expr,
        rhs: Val,
        cond: Lit,
        env: &mut HashMap<String, Val>,
    ) -> Result<()> {
        match lhs {
            Expr::Ident(name) => {
                let info = scope.infos.get(name).cloned().ok_or_else(|| {
                    ElabError::new(format!("assignment to unknown signal `{name}`"))
                })?;
                let old = env
                    .get(name)
                    .cloned()
                    .unwrap_or_else(|| default_value(&info));
                let new = match (old, rhs) {
                    (Val::Word(old), rhs) => {
                        // The declared width of the target wins: the RHS is
                        // truncated or zero-extended to fit.
                        let rhs = words::resize(&rhs.word()?, old.len());
                        Val::Word(words::mux(&mut self.aig, cond, &rhs, &old))
                    }
                    (Val::Array(old), Val::Array(new)) => {
                        let merged: Vec<Vec<Lit>> = old
                            .iter()
                            .zip(new.iter())
                            .map(|(o, n)| words::mux(&mut self.aig, cond, n, o))
                            .collect();
                        Val::Array(merged)
                    }
                    (Val::Array(_), Val::Word(_)) => {
                        return Err(ElabError::new(format!(
                            "cannot assign a packed value to the whole array `{name}`"
                        )))
                    }
                };
                env.insert(name.clone(), new);
                Ok(())
            }
            Expr::Index { base, index } => {
                let name = base
                    .as_ident()
                    .ok_or_else(|| ElabError::new("indexed assignment base must be a signal"))?
                    .to_string();
                let info = scope.infos.get(&name).cloned().ok_or_else(|| {
                    ElabError::new(format!("assignment to unknown signal `{name}`"))
                })?;
                let index_bits = self
                    .eval_expr_env(module, scope, drivers, index, env)?
                    .word()?;
                let old = env
                    .get(&name)
                    .cloned()
                    .unwrap_or_else(|| default_value(&info));
                match old {
                    Val::Array(elems) => {
                        let rhs = words::resize(&rhs.word()?, info.width);
                        let mut new_elems = Vec::with_capacity(elems.len());
                        for (i, elem) in elems.iter().enumerate() {
                            let idx_const = words::constant(i as u128, index_bits.len().max(1));
                            let is_this = words::eq(&mut self.aig, &index_bits, &idx_const);
                            let write = self.aig.and(cond, is_this);
                            new_elems.push(words::mux(&mut self.aig, write, &rhs, elem));
                        }
                        env.insert(name, Val::Array(new_elems));
                        Ok(())
                    }
                    Val::Word(bits) => {
                        // Single-bit write into a packed vector.
                        let rhs = rhs.word()?;
                        let rhs_bit = rhs.first().copied().unwrap_or(Lit::FALSE);
                        let mut new_bits = Vec::with_capacity(bits.len());
                        for (i, &bit) in bits.iter().enumerate() {
                            let idx_const = words::constant(i as u128, index_bits.len().max(1));
                            let is_this = words::eq(&mut self.aig, &index_bits, &idx_const);
                            let write = self.aig.and(cond, is_this);
                            new_bits.push(self.aig.mux(write, rhs_bit, bit));
                        }
                        env.insert(name, Val::Word(new_bits));
                        Ok(())
                    }
                }
            }
            Expr::RangeSelect { base, msb, lsb } => {
                let name = base
                    .as_ident()
                    .ok_or_else(|| ElabError::new("range assignment base must be a signal"))?
                    .to_string();
                let info = scope.infos.get(&name).cloned().ok_or_else(|| {
                    ElabError::new(format!("assignment to unknown signal `{name}`"))
                })?;
                let msb = const_eval(msb, &scope.params)? as usize;
                let lsb = const_eval(lsb, &scope.params)? as usize;
                let old = env
                    .get(&name)
                    .cloned()
                    .unwrap_or_else(|| default_value(&info))
                    .word()?;
                let rhs = words::resize(&rhs.word()?, msb - lsb + 1);
                let mut new_bits = old.clone();
                for (k, bit) in rhs.iter().enumerate() {
                    let pos = lsb + k;
                    if pos < new_bits.len() {
                        new_bits[pos] = self.aig.mux(cond, *bit, old[pos]);
                    }
                }
                env.insert(name, Val::Word(new_bits));
                Ok(())
            }
            Expr::Concat(parts) => {
                // {a, b} = rhs — split MSB-first.
                let rhs_bits = rhs.word()?;
                let mut widths = Vec::new();
                for part in parts {
                    let name = part
                        .as_ident()
                        .ok_or_else(|| ElabError::new("concat assignment parts must be signals"))?;
                    let info = scope
                        .infos
                        .get(name)
                        .ok_or_else(|| ElabError::new(format!("unknown signal `{name}`")))?;
                    widths.push(info.width);
                }
                let total: usize = widths.iter().sum();
                let rhs_bits = words::resize(&rhs_bits, total);
                // parts[0] is the most significant.
                let mut offset = total;
                for (part, width) in parts.iter().zip(widths.iter()) {
                    offset -= width;
                    let slice = rhs_bits[offset..offset + width].to_vec();
                    self.assign_lvalue(module, scope, drivers, part, Val::Word(slice), cond, env)?;
                }
                Ok(())
            }
            Expr::Member { .. } => {
                let (name, offset, width, _) = self.member_path(scope, lhs)?;
                let info = scope.infos.get(&name).cloned().ok_or_else(|| {
                    ElabError::new(format!("assignment to unknown signal `{name}`"))
                })?;
                let old = env
                    .get(&name)
                    .cloned()
                    .unwrap_or_else(|| default_value(&info))
                    .word()?;
                let rhs = words::resize(&rhs.word()?, width);
                let mut new_bits = old.clone();
                for (k, bit) in rhs.iter().enumerate() {
                    let pos = offset + k;
                    if pos < new_bits.len() {
                        new_bits[pos] = self.aig.mux(cond, *bit, old[pos]);
                    }
                }
                env.insert(name, Val::Word(new_bits));
                Ok(())
            }
            other => Err(ElabError::new(format!(
                "unsupported assignment target: {other:?}"
            ))),
        }
    }

    /// Statically resolves a (possibly nested) member access to
    /// `(base signal, LSB offset, width, sub-layout)`.
    fn member_path(
        &self,
        scope: &ModuleScope,
        expr: &Expr,
    ) -> Result<(String, usize, usize, Option<usize>)> {
        match expr {
            Expr::Ident(name) => {
                let info = scope
                    .infos
                    .get(name)
                    .ok_or_else(|| ElabError::new(format!("unknown signal `{name}`")))?;
                Ok((name.clone(), 0, info.width, info.layout))
            }
            Expr::Member { base, member } => {
                let (name, offset, _width, layout) = self.member_path(scope, base)?;
                let base_text = svparse::pretty::print_expr(base);
                let layout_ix = layout.ok_or_else(|| {
                    ElabError::new(format!(
                        "`{base_text}` is not a packed struct; `.{member}` cannot be resolved"
                    ))
                })?;
                let layout = self.types.layout(layout_ix);
                let field = layout
                    .field(member)
                    .ok_or_else(|| ElabError::field_error(base_text, member.clone(), layout))?;
                Ok((name, offset + field.offset, field.width, field.layout))
            }
            other => Err(ElabError::new(format!(
                "unsupported member-access base: {other:?}"
            ))),
        }
    }

    /// Evaluates an expression in the current scope (no statement-local
    /// environment).
    fn eval_expr(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        expr: &Expr,
    ) -> Result<Val> {
        let mut env = HashMap::new();
        self.eval_expr_env(module, scope, drivers, expr, &mut env)
    }

    /// Evaluates an expression, preferring values from the statement-local
    /// environment `env` (for signals mid-update inside a procedural block).
    fn eval_expr_env(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        expr: &Expr,
        env: &mut HashMap<String, Val>,
    ) -> Result<Val> {
        match expr {
            Expr::Number(n) => {
                let width = n.width.map(|w| w as usize).unwrap_or(32);
                let value = n.value.unwrap_or(0);
                Ok(Val::Word(words::constant(value, width.max(1))))
            }
            Expr::Str(_) => Err(ElabError::new("string literals are not synthesizable")),
            Expr::Macro(name) => Err(ElabError::new(format!(
                "macro `{name}` cannot be elaborated"
            ))),
            Expr::Ident(name) => {
                if let Some(v) = env.get(name) {
                    return Ok(v.clone());
                }
                if let Some(&value) = scope.params.get(name) {
                    return Ok(Val::Word(words::constant(value, 32)));
                }
                if scope.infos.contains_key(name) {
                    return self.resolve_signal(module, scope, drivers, name);
                }
                if let Some((value, width)) = self.types.enum_const_in(Some(&module.name), name) {
                    return Ok(Val::Word(words::constant(value, width.max(1))));
                }
                if self.types.ambiguous_const(name) {
                    return Err(ElabError::new(format!(
                        "enum member `{name}` is ambiguous: multiple packages export \
                         conflicting values — use a scoped reference (`pkg::{name}`)"
                    )));
                }
                Err(ElabError::new(format!("unknown identifier `{name}`")))
            }
            Expr::Unary { op, operand } => {
                let v = self
                    .eval_expr_env(module, scope, drivers, operand, env)?
                    .word()?;
                let result = match op {
                    UnaryOp::LogicalNot => vec![words::reduce_or(&mut self.aig, &v).invert()],
                    UnaryOp::BitwiseNot => words::not(&v),
                    UnaryOp::Negate => {
                        let zero = words::constant(0, v.len());
                        words::sub(&mut self.aig, &zero, &v)
                    }
                    UnaryOp::Plus => v,
                    UnaryOp::ReduceAnd => vec![words::reduce_and(&mut self.aig, &v)],
                    UnaryOp::ReduceOr => vec![words::reduce_or(&mut self.aig, &v)],
                    UnaryOp::ReduceXor => vec![words::reduce_xor(&mut self.aig, &v)],
                    UnaryOp::ReduceNand => vec![words::reduce_and(&mut self.aig, &v).invert()],
                    UnaryOp::ReduceNor => vec![words::reduce_or(&mut self.aig, &v).invert()],
                    UnaryOp::ReduceXnor => vec![words::reduce_xor(&mut self.aig, &v).invert()],
                };
                Ok(Val::Word(result))
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self
                    .eval_expr_env(module, scope, drivers, lhs, env)?
                    .word()?;
                let b = self
                    .eval_expr_env(module, scope, drivers, rhs, env)?
                    .word()?;
                let aig = &mut self.aig;
                let result = match op {
                    BinaryOp::Add => words::add(aig, &a, &b),
                    BinaryOp::Sub => words::sub(aig, &a, &b),
                    BinaryOp::Mul => words::mul(aig, &a, &b),
                    BinaryOp::Div | BinaryOp::Mod | BinaryOp::Pow => {
                        // Only constant operands are supported.
                        let ca = words::as_constant(&a);
                        let cb = words::as_constant(&b);
                        match (ca, cb, op) {
                            (Some(x), Some(y), BinaryOp::Div) if y != 0 => {
                                words::constant(x / y, a.len())
                            }
                            (Some(x), Some(y), BinaryOp::Mod) if y != 0 => {
                                words::constant(x % y, a.len())
                            }
                            (Some(x), Some(y), BinaryOp::Pow) => {
                                words::constant(x.pow(y as u32), a.len().max(8))
                            }
                            _ => {
                                return Err(ElabError::new(
                                    "division/modulo of non-constant operands is unsupported",
                                ))
                            }
                        }
                    }
                    BinaryOp::LogicalAnd => {
                        let ra = words::reduce_or(aig, &a);
                        let rb = words::reduce_or(aig, &b);
                        vec![aig.and(ra, rb)]
                    }
                    BinaryOp::LogicalOr => {
                        let ra = words::reduce_or(aig, &a);
                        let rb = words::reduce_or(aig, &b);
                        vec![aig.or(ra, rb)]
                    }
                    BinaryOp::BitAnd => words::bitwise(aig, &a, &b, |g, x, y| g.and(x, y)),
                    BinaryOp::BitOr => words::bitwise(aig, &a, &b, |g, x, y| g.or(x, y)),
                    BinaryOp::BitXor => words::bitwise(aig, &a, &b, |g, x, y| g.xor(x, y)),
                    BinaryOp::BitXnor => words::bitwise(aig, &a, &b, |g, x, y| g.xnor(x, y)),
                    BinaryOp::Eq | BinaryOp::CaseEq => vec![words::eq(aig, &a, &b)],
                    BinaryOp::Ne | BinaryOp::CaseNe => vec![words::eq(aig, &a, &b).invert()],
                    BinaryOp::Lt => vec![words::ult(aig, &a, &b)],
                    BinaryOp::Le => vec![words::ule(aig, &a, &b)],
                    BinaryOp::Gt => vec![words::ult(aig, &b, &a)],
                    BinaryOp::Ge => vec![words::ule(aig, &b, &a)],
                    BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => {
                        let amount = words::as_constant(&b).ok_or_else(|| {
                            ElabError::new("shift amounts must be constant expressions")
                        })? as usize;
                        match op {
                            BinaryOp::Shl => words::shl_const(&a, amount),
                            _ => words::shr_const(&a, amount),
                        }
                    }
                };
                Ok(Val::Word(result))
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let c = self
                    .eval_expr_env(module, scope, drivers, cond, env)?
                    .word()?;
                let c_lit = words::reduce_or(&mut self.aig, &c);
                let t = self
                    .eval_expr_env(module, scope, drivers, then_expr, env)?
                    .word()?;
                let e = self
                    .eval_expr_env(module, scope, drivers, else_expr, env)?
                    .word()?;
                Ok(Val::Word(words::mux(&mut self.aig, c_lit, &t, &e)))
            }
            Expr::Index { base, index } => {
                let base_val = self.eval_expr_env(module, scope, drivers, base, env)?;
                let index_bits = self
                    .eval_expr_env(module, scope, drivers, index, env)?
                    .word()?;
                match base_val {
                    Val::Array(elems) => {
                        Ok(Val::Word(words::select(&mut self.aig, &elems, &index_bits)))
                    }
                    Val::Word(bits) => {
                        let singles: Vec<Vec<Lit>> = bits.iter().map(|&b| vec![b]).collect();
                        Ok(Val::Word(words::select(
                            &mut self.aig,
                            &singles,
                            &index_bits,
                        )))
                    }
                }
            }
            Expr::RangeSelect { base, msb, lsb } => {
                let base_bits = self
                    .eval_expr_env(module, scope, drivers, base, env)?
                    .word()?;
                let msb = const_eval(msb, &scope.params)? as usize;
                let lsb = const_eval(lsb, &scope.params)? as usize;
                let hi = msb.max(lsb);
                let lo = msb.min(lsb);
                let mut out = Vec::new();
                for i in lo..=hi {
                    out.push(base_bits.get(i).copied().unwrap_or(Lit::FALSE));
                }
                Ok(Val::Word(out))
            }
            Expr::Member { .. } => {
                let (name, offset, width, _) = self.member_path(scope, expr)?;
                let base_bits = match env.get(&name) {
                    Some(v) => v.clone().word()?,
                    None => self.resolve_signal(module, scope, drivers, &name)?.word()?,
                };
                let mut out = Vec::with_capacity(width);
                for i in offset..offset + width {
                    out.push(base_bits.get(i).copied().unwrap_or(Lit::FALSE));
                }
                Ok(Val::Word(out))
            }
            Expr::Concat(parts) => {
                // SystemVerilog concatenation lists the MSB part first.
                let mut bits = Vec::new();
                for part in parts.iter().rev() {
                    let mut v = self
                        .eval_expr_env(module, scope, drivers, part, env)?
                        .word()?;
                    bits.append(&mut v);
                }
                Ok(Val::Word(bits))
            }
            Expr::Replicate { count, value } => {
                let n = const_eval(count, &scope.params)? as usize;
                let v = self
                    .eval_expr_env(module, scope, drivers, value, env)?
                    .word()?;
                let mut bits = Vec::with_capacity(n * v.len());
                for _ in 0..n {
                    bits.extend_from_slice(&v);
                }
                Ok(Val::Word(bits))
            }
            Expr::Call {
                name,
                is_system,
                args,
            } => {
                if *is_system && name == "clog2" {
                    let arg = const_eval(
                        args.first()
                            .ok_or_else(|| ElabError::new("$clog2 requires an argument"))?,
                        &scope.params,
                    )?;
                    let result = clog2(arg);
                    return Ok(Val::Word(words::constant(result, 32)));
                }
                if *is_system && (name == "unsigned" || name == "signed") {
                    return self.eval_expr_env(module, scope, drivers, &args[0], env);
                }
                Err(ElabError::new(format!(
                    "call to `{}{name}` is not supported",
                    if *is_system { "$" } else { "" }
                )))
            }
        }
    }
}

fn default_value(info: &SigInfo) -> Val {
    match info.array {
        None => Val::Word(words::constant(0, info.width)),
        Some(len) => Val::Array(vec![words::constant(0, info.width); len]),
    }
}

fn clog2(value: u128) -> u128 {
    if value <= 1 {
        0
    } else {
        (128 - (value - 1).leading_zeros()) as u128
    }
}

/// `true` when the always block is edge-sensitive (a flip-flop description).
fn is_sequential(block: &AlwaysBlock) -> bool {
    match block.kind {
        AlwaysKind::Ff => true,
        AlwaysKind::Comb | AlwaysKind::Initial => false,
        AlwaysKind::Plain => block.sensitivity.iter().any(|e| e.posedge.is_some()),
    }
}

/// Collects the base signal names assigned anywhere inside a statement.
fn collect_assign_targets(stmt: &Stmt, blocking: bool, out: &mut Vec<String>) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                collect_assign_targets(s, blocking, out);
            }
        }
        Stmt::Blocking(a) => {
            if blocking {
                out.extend(lvalue_targets(&a.lhs));
            } else {
                // Blocking assignments inside always_ff also create state.
                out.extend(lvalue_targets(&a.lhs));
            }
        }
        Stmt::NonBlocking(a) => out.extend(lvalue_targets(&a.lhs)),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_assign_targets(then_branch, blocking, out);
            if let Some(e) = else_branch {
                collect_assign_targets(e, blocking, out);
            }
        }
        Stmt::Case { items, .. } => {
            for item in items {
                collect_assign_targets(&item.body, blocking, out);
            }
        }
        Stmt::Empty => {}
    }
}

/// Collects every identifier referenced anywhere in a statement (conditions,
/// case subjects and labels, both assignment sides) — the conservative
/// dependency set used by the static instance-cone analysis.
fn collect_stmt_idents(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                collect_stmt_idents(s, out);
            }
        }
        Stmt::Blocking(a) | Stmt::NonBlocking(a) => {
            out.extend(a.lhs.referenced_idents());
            out.extend(a.rhs.referenced_idents());
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.extend(cond.referenced_idents());
            collect_stmt_idents(then_branch, out);
            if let Some(e) = else_branch {
                collect_stmt_idents(e, out);
            }
        }
        Stmt::Case { subject, items } => {
            out.extend(subject.referenced_idents());
            for item in items {
                for label in &item.labels {
                    out.extend(label.referenced_idents());
                }
                collect_stmt_idents(&item.body, out);
            }
        }
        Stmt::Empty => {}
    }
}

/// Base signal names written by an lvalue expression.
fn lvalue_targets(lhs: &Expr) -> Vec<String> {
    match lhs {
        Expr::Ident(name) => vec![name.clone()],
        Expr::Index { base, .. } | Expr::RangeSelect { base, .. } => lvalue_targets(base),
        Expr::Concat(parts) => parts.iter().flat_map(lvalue_targets).collect(),
        Expr::Member { base, .. } => lvalue_targets(base),
        _ => Vec::new(),
    }
}

/// Human description of a driving module item, for multiply-driven lint
/// messages.
fn driver_desc(item: &ModuleItem) -> &'static str {
    match item {
        ModuleItem::ContinuousAssign(_) => "a continuous assign",
        ModuleItem::Decl(_) => "a declaration initializer",
        ModuleItem::Always(_) => "a combinational always block",
        ModuleItem::Instance(_) => "an instance output",
        _ => "another driver",
    }
}

/// Signal names an lvalue assigns *in full*.  Bit/range selects and member
/// writes are excluded: several statements each driving a different slice of
/// one signal are legal, so only whole-signal targets feed the
/// multiply-driven lint.
fn whole_lvalue_targets(lhs: &Expr) -> Vec<String> {
    match lhs {
        Expr::Ident(name) => vec![name.clone()],
        Expr::Concat(parts) => parts.iter().flat_map(whole_lvalue_targets).collect(),
        _ => Vec::new(),
    }
}

/// Whole-signal assignment targets of a statement tree (see
/// [`whole_lvalue_targets`]).
fn collect_whole_assign_targets(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                collect_whole_assign_targets(s, out);
            }
        }
        Stmt::Blocking(a) | Stmt::NonBlocking(a) => out.extend(whole_lvalue_targets(&a.lhs)),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_whole_assign_targets(then_branch, out);
            if let Some(e) = else_branch {
                collect_whole_assign_targets(e, out);
            }
        }
        Stmt::Case { items, .. } => {
            for item in items {
                collect_whole_assign_targets(&item.body, out);
            }
        }
        Stmt::Empty => {}
    }
}

/// Collects constant assignments from a reset branch.
fn collect_const_assigns(
    stmt: &Stmt,
    params: &HashMap<String, u128>,
    inits: &mut HashMap<String, u128>,
    array_inits: &mut HashMap<String, Vec<u128>>,
) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                collect_const_assigns(s, params, inits, array_inits);
            }
        }
        Stmt::Blocking(a) | Stmt::NonBlocking(a) => {
            if let Some(name) = a.lhs.as_ident() {
                if let Ok(v) = const_eval(&a.rhs, params) {
                    inits.insert(name.to_string(), v);
                }
            } else if let Expr::Index { base, index } = &a.lhs {
                if let (Some(name), Ok(idx), Ok(v)) = (
                    base.as_ident(),
                    const_eval(index, params),
                    const_eval(&a.rhs, params),
                ) {
                    let entry = array_inits.entry(name.to_string()).or_default();
                    let idx = idx as usize;
                    if entry.len() <= idx {
                        entry.resize(idx + 1, 0);
                    }
                    entry[idx] = v;
                }
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_const_assigns(then_branch, params, inits, array_inits);
            if let Some(e) = else_branch {
                collect_const_assigns(e, params, inits, array_inits);
            }
        }
        Stmt::Case { items, .. } => {
            for item in items {
                collect_const_assigns(&item.body, params, inits, array_inits);
            }
        }
        Stmt::Empty => {}
    }
}

/// `true` if `expr` tests that the reset is asserted.
fn expr_is_reset_condition(expr: &Expr, reset: &str, active_low: bool) -> bool {
    match expr {
        Expr::Unary {
            op: UnaryOp::LogicalNot | UnaryOp::BitwiseNot,
            operand,
        } => active_low && operand.as_ident() == Some(reset),
        Expr::Ident(name) => !active_low && name == reset,
        Expr::Binary {
            op: BinaryOp::Eq,
            lhs,
            rhs,
        } => {
            let (id, num) = match (lhs.as_ident(), rhs.as_ref()) {
                (Some(id), Expr::Number(n)) => (id, n.value),
                _ => match (rhs.as_ident(), lhs.as_ref()) {
                    (Some(id), Expr::Number(n)) => (id, n.value),
                    _ => return false,
                },
            };
            id == reset && num == Some(if active_low { 0 } else { 1 })
        }
        _ => false,
    }
}

/// Evaluates a constant expression over a parameter environment.
///
/// # Errors
///
/// Returns an error if the expression references signals or uses unsupported
/// operators.
pub fn const_eval(expr: &Expr, params: &HashMap<String, u128>) -> Result<u128> {
    match expr {
        Expr::Number(n) => n
            .value
            .ok_or_else(|| ElabError::new("x/z literal in constant expression")),
        Expr::Ident(name) => params
            .get(name)
            .copied()
            .ok_or_else(|| ElabError::new(format!("`{name}` is not a constant parameter"))),
        Expr::Unary { op, operand } => {
            let v = const_eval(operand, params)?;
            Ok(match op {
                UnaryOp::LogicalNot => u128::from(v == 0),
                UnaryOp::BitwiseNot => !v,
                UnaryOp::Negate => v.wrapping_neg(),
                UnaryOp::Plus => v,
                _ => return Err(ElabError::new("reduction in constant expression")),
            })
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = const_eval(lhs, params)?;
            let b = const_eval(rhs, params)?;
            Ok(match op {
                BinaryOp::Add => a.wrapping_add(b),
                BinaryOp::Sub => a.wrapping_sub(b),
                BinaryOp::Mul => a.wrapping_mul(b),
                BinaryOp::Div => {
                    if b == 0 {
                        return Err(ElabError::new("division by zero in constant expression"));
                    }
                    a / b
                }
                BinaryOp::Mod => {
                    if b == 0 {
                        return Err(ElabError::new("modulo by zero in constant expression"));
                    }
                    a % b
                }
                BinaryOp::Pow => a.pow(b as u32),
                BinaryOp::Shl => a << b,
                BinaryOp::Shr | BinaryOp::AShr => a >> b,
                BinaryOp::BitAnd => a & b,
                BinaryOp::BitOr => a | b,
                BinaryOp::BitXor => a ^ b,
                BinaryOp::BitXnor => !(a ^ b),
                BinaryOp::LogicalAnd => u128::from(a != 0 && b != 0),
                BinaryOp::LogicalOr => u128::from(a != 0 || b != 0),
                BinaryOp::Eq | BinaryOp::CaseEq => u128::from(a == b),
                BinaryOp::Ne | BinaryOp::CaseNe => u128::from(a != b),
                BinaryOp::Lt => u128::from(a < b),
                BinaryOp::Le => u128::from(a <= b),
                BinaryOp::Gt => u128::from(a > b),
                BinaryOp::Ge => u128::from(a >= b),
            })
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            if const_eval(cond, params)? != 0 {
                const_eval(then_expr, params)
            } else {
                const_eval(else_expr, params)
            }
        }
        Expr::Call {
            name,
            is_system: true,
            args,
        } if name == "clog2" => {
            let v = const_eval(
                args.first()
                    .ok_or_else(|| ElabError::new("$clog2 requires an argument"))?,
                params,
            )?;
            Ok(clog2(v))
        }
        other => Err(ElabError::new(format!(
            "expression is not a constant: {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmc::{check_safety, BmcOptions, SafetyResult};
    use crate::model::{BadProperty, Model};

    fn elab(src: &str) -> ElabDesign {
        let file = svparse::parse(src).expect("parse");
        elaborate(&file, &ElabOptions::default()).expect("elaborate")
    }

    #[test]
    fn const_eval_basics() {
        let params: HashMap<String, u128> = [("W".to_string(), 8u128)].into_iter().collect();
        let e = svparse::parse_expr("W - 1").unwrap();
        assert_eq!(const_eval(&e, &params).unwrap(), 7);
        let e = svparse::parse_expr("$clog2(W)").unwrap();
        assert_eq!(const_eval(&e, &params).unwrap(), 3);
        let e = svparse::parse_expr("2 ** 4 + 1").unwrap();
        assert_eq!(const_eval(&e, &params).unwrap(), 17);
        let e = svparse::parse_expr("W > 4 ? 10 : 20").unwrap();
        assert_eq!(const_eval(&e, &params).unwrap(), 10);
        assert!(const_eval(&svparse::parse_expr("missing").unwrap(), &params).is_err());
    }

    #[test]
    fn clog2_values() {
        assert_eq!(clog2(0), 0);
        assert_eq!(clog2(1), 0);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(5), 3);
        assert_eq!(clog2(8), 3);
        assert_eq!(clog2(9), 4);
    }

    #[test]
    fn elaborate_combinational_logic() {
        let design = elab(
            "module comb (input logic a, input logic b, output logic y, output logic z);\n\
               assign y = a & b;\n\
               assign z = a | ~b;\n\
             endmodule",
        );
        assert_eq!(design.top, "comb");
        assert!(design.signal("y").is_some());
        assert_eq!(design.width("y"), Some(1));
        assert_eq!(design.aig.num_latches(), 0);
        assert_eq!(design.aig.num_inputs(), 2);
    }

    #[test]
    fn elaborate_counter_and_check_reachability() {
        let src = "module counter (input logic clk_i, input logic rst_ni, input logic en_i, output logic [2:0] cnt_o);\n\
             logic [2:0] cnt_q;\n\
             always_ff @(posedge clk_i or negedge rst_ni) begin\n\
               if (!rst_ni) cnt_q <= 3'd0;\n\
               else if (en_i) cnt_q <= cnt_q + 3'd1;\n\
             end\n\
             assign cnt_o = cnt_q;\n\
           endmodule";
        let design = elab(src);
        assert_eq!(design.aig.num_latches(), 3);
        // The counter can reach 7 but a value can only be reached after
        // enough enabled cycles.
        let cnt = design.signal("cnt_q").unwrap().to_vec();
        let mut model = Model::new(design.aig.clone());
        let target = words::eq(&mut model.aig, &cnt, &words::constant(5, 3));
        model.bads.push(BadProperty {
            name: "reaches5".into(),
            lit: target,
        });
        match check_safety(&model, 0, &BmcOptions::default()) {
            SafetyResult::Violated(trace) => assert_eq!(trace.len(), 6),
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn reset_values_become_latch_inits() {
        let src =
            "module initval (input logic clk_i, input logic rst_ni, output logic [3:0] q_o);\n\
             logic [3:0] q;\n\
             always_ff @(posedge clk_i or negedge rst_ni) begin\n\
               if (!rst_ni) q <= 4'd9;\n\
               else q <= q;\n\
             end\n\
             assign q_o = q;\n\
           endmodule";
        let design = elab(src);
        let inits: u128 = design
            .aig
            .latches()
            .iter()
            .enumerate()
            .map(|(i, l)| if l.init { 1 << i } else { 0 })
            .sum();
        assert_eq!(inits, 9);
    }

    #[test]
    fn parameters_and_localparams_resolve() {
        let src = "module p #(parameter W = 4, parameter DEPTH = 2**W) (input logic clk_i, output logic [W-1:0] x_o);\n\
             localparam HALF = DEPTH / 2;\n\
             assign x_o = HALF[W-1:0];\n\
           endmodule";
        let design = elab(src);
        assert_eq!(design.width("x_o"), Some(4));
        // HALF = 8 -> x_o == 8
        let bits = design.signal("x_o").unwrap();
        assert_eq!(words::as_constant(bits), Some(8));
    }

    #[test]
    fn always_comb_case_statement() {
        let src = "module dec (input logic [1:0] sel_i, output logic [3:0] onehot_o);\n\
             always_comb begin\n\
               onehot_o = 4'b0000;\n\
               case (sel_i)\n\
                 2'd0: onehot_o = 4'b0001;\n\
                 2'd1: onehot_o = 4'b0010;\n\
                 2'd2: onehot_o = 4'b0100;\n\
                 default: onehot_o = 4'b1000;\n\
               endcase\n\
             end\n\
           endmodule";
        let design = elab(src);
        assert_eq!(design.width("onehot_o"), Some(4));
        assert_eq!(design.aig.num_inputs(), 2);
    }

    #[test]
    fn unpacked_array_with_dynamic_index() {
        let src = "module regfile (input logic clk_i, input logic rst_ni,\n\
             input logic we_i, input logic [1:0] waddr_i, input logic [7:0] wdata_i,\n\
             input logic [1:0] raddr_i, output logic [7:0] rdata_o);\n\
             logic [7:0] mem [0:3];\n\
             always_ff @(posedge clk_i or negedge rst_ni) begin\n\
               if (!rst_ni) begin\n\
                 mem[0] <= 8'd0; mem[1] <= 8'd0; mem[2] <= 8'd0; mem[3] <= 8'd0;\n\
               end else if (we_i) begin\n\
                 mem[waddr_i] <= wdata_i;\n\
               end\n\
             end\n\
             assign rdata_o = mem[raddr_i];\n\
           endmodule";
        let design = elab(src);
        assert_eq!(design.aig.num_latches(), 32);
        assert!(design.signal("mem[2]").is_some());
        assert_eq!(design.width("rdata_o"), Some(8));
    }

    #[test]
    fn module_instances_are_elaborated_hierarchically() {
        let src = "module inner (input logic clk_i, input logic rst_ni, input logic d_i, output logic q_o);\n\
             logic q;\n\
             always_ff @(posedge clk_i or negedge rst_ni) begin\n\
               if (!rst_ni) q <= 1'b0; else q <= d_i;\n\
             end\n\
             assign q_o = q;\n\
           endmodule\n\
           module outer (input logic clk_i, input logic rst_ni, input logic d_i, output logic q_o);\n\
             logic mid;\n\
             inner u_first (.clk_i(clk_i), .rst_ni(rst_ni), .d_i(d_i), .q_o(mid));\n\
             inner u_second (.clk_i(clk_i), .rst_ni(rst_ni), .d_i(mid), .q_o(q_o));\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let design = elaborate(
            &file,
            &ElabOptions {
                top: Some("outer".to_string()),
                ..ElabOptions::default()
            },
        )
        .unwrap();
        assert_eq!(design.top, "outer");
        assert_eq!(design.aig.num_latches(), 2);
        assert!(design.signal("u_first.q").is_some());
        assert!(design.signal("u_second.q").is_some());
        assert!(design.signal("q_o").is_some());
    }

    #[test]
    fn undriven_signal_becomes_free_input() {
        let design = elab(
            "module free (input logic clk_i, output logic y_o);\n\
               logic mystery;\n\
               assign y_o = mystery;\n\
             endmodule",
        );
        // `mystery` has no driver: it must appear as an AIG input.
        assert_eq!(design.aig.num_inputs(), 1);
    }

    const STRUCT_PKG: &str = "package fu_pkg;\n\
         parameter TRANS_ID_BITS = 3;\n\
         typedef enum logic [1:0] { FU_NONE, LOAD, STORE } fu_op_t;\n\
         typedef struct packed {\n\
           logic [TRANS_ID_BITS-1:0] trans_id;\n\
           fu_op_t fu;\n\
         } fu_data_t;\n\
       endpackage\n";

    #[test]
    fn struct_member_reads_are_bit_slices() {
        let src = format!(
            "{STRUCT_PKG}module m (input logic clk_i, input fu_pkg::fu_data_t fu_data_i,\n\
               output logic [1:0] op_o, output logic [2:0] id_o);\n\
               assign op_o = fu_data_i.fu;\n\
               assign id_o = fu_data_i.trans_id;\n\
             endmodule"
        );
        let file = svparse::parse(&src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        // Struct width 5: trans_id at [4:2] (first field = MSB end), fu at [1:0].
        let port = design.signal("fu_data_i").unwrap().to_vec();
        assert_eq!(port.len(), 5);
        assert_eq!(design.signal("op_o").unwrap(), &port[0..2]);
        assert_eq!(design.signal("id_o").unwrap(), &port[2..5]);
        // The struct type of the port is exported for property compilation.
        let layout = design.signal_layout("fu_data_i").expect("layout exported");
        assert_eq!(layout.width, 5);
        assert_eq!(layout.field("fu").unwrap().offset, 0);
        assert_eq!(layout.field("trans_id").unwrap().offset, 2);
        // Enum members resolve as constants of the enum width.
        assert_eq!(design.types.enum_const("LOAD"), Some((1, 2)));
        assert_eq!(design.types.enum_const("fu_pkg::STORE"), Some((2, 2)));
    }

    #[test]
    fn struct_member_writes_update_slices() {
        let src = format!(
            "{STRUCT_PKG}module m (input logic clk_i, input logic rst_ni,\n\
               input logic [2:0] id_i, output logic [4:0] flat_o);\n\
               fu_pkg::fu_data_t s_q;\n\
               always_ff @(posedge clk_i or negedge rst_ni) begin\n\
                 if (!rst_ni) s_q <= '0;\n\
                 else begin\n\
                   s_q.trans_id <= id_i;\n\
                   s_q.fu <= LOAD;\n\
                 end\n\
               end\n\
               assign flat_o = s_q;\n\
             endmodule"
        );
        let file = svparse::parse(&src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        assert_eq!(design.width("s_q"), Some(5));
        assert_eq!(design.aig.num_latches(), 5);
        // After one cycle the fu field holds LOAD = 2'b01 and trans_id = id_i.
        let mut sim = crate::sim::Simulator::new(&crate::model::Model::new(design.aig.clone()));
        let inputs: std::collections::HashMap<String, bool> =
            [("id_i[0]", true), ("id_i[1]", false), ("id_i[2]", true)]
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect();
        sim.step_named(&inputs);
        let s_q = design.signal("s_q").unwrap();
        let got: u32 = s_q
            .iter()
            .enumerate()
            .map(|(i, &l)| if sim.value(l) { 1 << i } else { 0 })
            .sum();
        // trans_id = 3'b101 at [4:2], fu = 2'b01 at [1:0] -> 5'b10101.
        assert_eq!(got, 0b10101);
    }

    #[test]
    fn enum_members_usable_in_rtl_expressions() {
        let src = format!(
            "{STRUCT_PKG}module m (input logic clk_i, input fu_pkg::fu_data_t fu_data_i,\n\
               output logic is_load_o, output logic is_store_o);\n\
               assign is_load_o = fu_data_i.fu == LOAD;\n\
               assign is_store_o = fu_data_i.fu == fu_pkg::STORE;\n\
             endmodule"
        );
        let file = svparse::parse(&src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        assert_eq!(design.width("is_load_o"), Some(1));
        assert_eq!(design.width("is_store_o"), Some(1));
    }

    #[test]
    fn nested_struct_member_access_resolves() {
        let src = "package p;\n\
             typedef struct packed { logic [1:0] lo; logic [1:0] hi; } inner_t;\n\
             typedef struct packed { inner_t a; logic b; } outer_t;\n\
           endpackage\n\
           module m (input logic clk_i, input p::outer_t x_i, output logic [1:0] y_o);\n\
             assign y_o = x_i.a.hi;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        // outer_t: a at [4:1] (inner_t: lo at [3:2] of outer / hi at [1:0]
        // relative... compute: inner_t is {lo (MSB), hi}: lo at [3:2], hi at
        // [1:0] within inner; outer {a (MSB), b}: a at [4:1], b at [0].
        let x = design.signal("x_i").unwrap().to_vec();
        assert_eq!(x.len(), 5);
        // a.hi = inner offset 0 within a, a at outer offset 1 -> bits [2:1].
        assert_eq!(design.signal("y_o").unwrap(), &x[1..3]);
    }

    #[test]
    fn unknown_struct_field_renders_caret_and_valid_fields() {
        let src = format!(
            "{STRUCT_PKG}module m (input logic clk_i, input fu_pkg::fu_data_t fu_data_i,\n\
               output logic y_o);\n\
               assign y_o = fu_data_i.fuu == LOAD;\n\
             endmodule"
        );
        let file = svparse::parse(&src).unwrap();
        let err = elaborate(&file, &ElabOptions::default()).unwrap_err();
        assert!(err.message.contains("no field `fuu`"), "{}", err.message);
        let rendered = err.render(&src);
        // The caret snippet points at the field on its source line and lists
        // the valid fields of the struct type.
        assert!(rendered.contains("fu_data_i.fuu"), "rendered: {rendered}");
        assert!(rendered.contains("^^^"), "rendered: {rendered}");
        assert!(
            rendered.contains("valid fields of `fu_data_t`: trans_id, fu"),
            "rendered: {rendered}"
        );
    }

    #[test]
    fn scalar_base_enum_is_one_bit() {
        // `enum logic { ... }` (no dimensions) is a 1-bit enum, not the
        // 32-bit no-base default.
        let src = "package p;\n\
             typedef enum logic { IDLE, BUSY } state_t;\n\
           endpackage\n\
           module m (input logic clk_i, input logic rst_ni, output logic y_o);\n\
             p::state_t s_q;\n\
             always_ff @(posedge clk_i or negedge rst_ni) begin\n\
               if (!rst_ni) s_q <= '0;\n\
               else s_q <= BUSY;\n\
             end\n\
             assign y_o = s_q == BUSY;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        assert_eq!(design.width("s_q"), Some(1));
        assert_eq!(design.aig.num_latches(), 1);
        assert_eq!(design.types.enum_const("BUSY"), Some((1, 1)));
    }

    #[test]
    fn enum_member_exceeding_base_width_is_rejected() {
        let src = "package p;\n\
             typedef enum logic [1:0] { A = 5 } t;\n\
           endpackage\n\
           module m (input logic clk_i, output logic y_o);\n\
             assign y_o = 1'b0;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let err = elaborate(&file, &ElabOptions::default()).unwrap_err();
        assert!(
            err.message.contains("does not fit"),
            "unexpected message: {}",
            err.message
        );
        // Auto-increment overflow is caught the same way.
        let src = "package p;\n\
             typedef enum logic [0:0] { X, Y, Z } t;\n\
           endpackage\n\
           module m (input logic clk_i, output logic y_o);\n\
             assign y_o = 1'b0;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        assert!(elaborate(&file, &ElabOptions::default()).is_err());
    }

    #[test]
    fn conflicting_unscoped_aliases_require_scoped_access() {
        // Two packages exporting the same enum-member name with different
        // values: the unscoped alias is withdrawn (using it is an error),
        // scoped access still resolves each package's value.
        let src = "package pa;\n\
             typedef enum logic [1:0] { IDLE, GO } sa_t;\n\
           endpackage\n\
           package pb;\n\
             typedef enum logic [1:0] { RUN, IDLE } sb_t;\n\
           endpackage\n\
           module m (input logic clk_i, input logic [1:0] s_i, output logic a_o, output logic b_o);\n\
             assign a_o = s_i == pa::IDLE;\n\
             assign b_o = s_i == pb::IDLE;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        assert_eq!(design.types.enum_const("pa::IDLE"), Some((0, 2)));
        assert_eq!(design.types.enum_const("pb::IDLE"), Some((1, 2)));
        assert_eq!(design.types.enum_const("IDLE"), None);
        // Non-conflicting members keep their unscoped alias.
        assert_eq!(design.types.enum_const("GO"), Some((1, 2)));

        let src = "package pa;\n\
             typedef enum logic [1:0] { IDLE, GO } sa_t;\n\
           endpackage\n\
           package pb;\n\
             typedef enum logic [1:0] { RUN, IDLE } sb_t;\n\
           endpackage\n\
           module m (input logic clk_i, input logic [1:0] s_i, output logic a_o);\n\
             assign a_o = s_i == IDLE;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let err = elaborate(&file, &ElabOptions::default()).unwrap_err();
        assert!(
            err.message.contains("`IDLE` is ambiguous"),
            "unexpected message: {}",
            err.message
        );
    }

    #[test]
    fn contested_alias_is_never_bound_by_source_order() {
        // A typedef referencing a bare name that *later* turns out to be
        // contested must not silently bind to the first definition: with
        // conflicting definitions the referencing typedef fails to resolve.
        let src = "package pa;\n\
             typedef logic [1:0] t;\n\
           endpackage\n\
           typedef t u;\n\
           package pb;\n\
             typedef logic [3:0] t;\n\
           endpackage\n\
           module m (input logic clk_i, input u x_i, output logic y_o);\n\
             assign y_o = x_i[0];\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let err = elaborate(&file, &ElabOptions::default()).unwrap_err();
        assert!(
            err.message.contains("`t` is ambiguous"),
            "unexpected message: {}",
            err.message
        );
        // With agreeing definitions the alias publishes and `u` resolves —
        // independent of where the reference sits relative to the packages.
        let src_ok = src.replace("logic [3:0] t", "logic [1:0] t");
        let file = svparse::parse(&src_ok).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        assert_eq!(design.width("x_i"), Some(2));
    }

    #[test]
    fn unsupported_typedef_bodies_fall_back_to_opaque() {
        // A typedef body outside the parsed subset (field with unpacked
        // dimensions) must not make the whole file unverifiable: it parses
        // opaquely, the file elaborates while the type is unused, and only
        // a use of the name errors.
        let src = "typedef struct packed { logic a [2]; } weird_t;\n\
           module m (input logic clk_i, input logic d_i, output logic y_o);\n\
             assign y_o = d_i;\n\
           endmodule";
        let file = svparse::parse(src).expect("opaque fallback must parse");
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        assert_eq!(design.width("y_o"), Some(1));

        let src_used = "typedef struct packed { logic a [2]; } weird_t;\n\
           module m (input logic clk_i, input weird_t d_i, output logic y_o);\n\
             assign y_o = d_i[0];\n\
           endmodule";
        let file = svparse::parse(src_used).unwrap();
        let err = elaborate(&file, &ElabOptions::default()).unwrap_err();
        assert!(
            err.message.contains("unknown type `weird_t`"),
            "unexpected message: {}",
            err.message
        );
    }

    #[test]
    fn nested_anonymous_struct_fields_resolve() {
        let src = "package p;\n\
             typedef struct packed {\n\
               struct packed { logic [1:0] lo; logic [1:0] hi; } a;\n\
               logic b;\n\
             } outer_t;\n\
           endpackage\n\
           module m (input logic clk_i, input p::outer_t x_i, output logic [1:0] y_o);\n\
             assign y_o = x_i.a.hi;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        let x = design.signal("x_i").unwrap().to_vec();
        assert_eq!(x.len(), 5);
        // a at [4:1] (anonymous inner: lo MSB-half, hi LSB-half), b at [0]:
        // a.hi = bits [2:1] of the outer word.
        assert_eq!(design.signal("y_o").unwrap(), &x[1..3]);
    }

    #[test]
    fn module_local_typedefs_do_not_collide_across_modules() {
        // Per-module `state_t` typedefs (a very common FSM pattern) are
        // module-local: same-named typedefs with different widths in two
        // modules must not poison each other or leak.
        let src = "module a (input logic clk_i, output logic [1:0] y_o);\n\
             typedef logic [1:0] state_t;\n\
             state_t s;\n\
             assign y_o = s;\n\
           endmodule\n\
           module b (input logic clk_i, output logic [3:0] y_o);\n\
             typedef logic [3:0] state_t;\n\
             state_t s;\n\
             assign y_o = s;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        for (top, width) in [("a", 2), ("b", 4)] {
            let design = elaborate(
                &file,
                &ElabOptions {
                    top: Some(top.to_string()),
                    ..ElabOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("module `{top}` failed to elaborate: {e}"));
            assert_eq!(design.width("s"), Some(width), "module `{top}`");
        }
    }

    #[test]
    fn identical_struct_typedefs_share_the_unscoped_alias() {
        // Byte-identical struct typedefs in two packages (a shared header
        // textually included in both) are the *same* definition: the
        // unscoped alias survives, so bare `s_t` still resolves.
        let src = "package pa;\n\
             typedef struct packed { logic [1:0] d; } s_t;\n\
           endpackage\n\
           package pb;\n\
             typedef struct packed { logic [1:0] d; } s_t;\n\
           endpackage\n\
           module m (input logic clk_i, input s_t x_i, output logic [1:0] y_o);\n\
             assign y_o = x_i.d;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        assert_eq!(design.width("x_i"), Some(2));
        let x = design.signal("x_i").unwrap().to_vec();
        assert_eq!(design.signal("y_o").unwrap(), &x[0..2]);

        // Structurally *different* structs under the same name still poison
        // the alias: bare use errors, scoped use works.
        let src = "package pa;\n\
             typedef struct packed { logic [1:0] d; } s_t;\n\
           endpackage\n\
           package pb;\n\
             typedef struct packed { logic [3:0] d; } s_t;\n\
           endpackage\n\
           module m (input logic clk_i, input pb::s_t x_i, output logic [3:0] y_o);\n\
             assign y_o = x_i.d;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        assert_eq!(design.width("x_i"), Some(4));
        let src_bare = src.replace("input pb::s_t x_i", "input s_t x_i");
        let file = svparse::parse(&src_bare).unwrap();
        let err = elaborate(&file, &ElabOptions::default()).unwrap_err();
        assert!(
            err.message.contains("`s_t` is ambiguous"),
            "unexpected message: {}",
            err.message
        );
    }

    #[test]
    fn typedefs_reference_parameters_across_packages_and_order() {
        // A typedef may reference another package's parameter regardless of
        // declaration order: all package parameters are collected before any
        // typedef resolves.
        let src = "package b_pkg;\n\
             typedef logic [a_pkg::W-1:0] t;\n\
           endpackage\n\
           package a_pkg;\n\
             parameter W = 4;\n\
           endpackage\n\
           module m (input logic clk_i, input b_pkg::t x_i, output logic y_o);\n\
             assign y_o = x_i[0];\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        assert_eq!(design.width("x_i"), Some(4));
    }

    #[test]
    fn param_override_touching_module_typedef_is_rejected() {
        // Module-scope typedef widths are fixed at the default parameter
        // values; overriding a parameter the typedef references must error
        // instead of silently building a wrong-width model.
        let src = "module m #(parameter W = 4) (input logic clk_i, output logic y_o);\n\
             typedef struct packed { logic [W-1:0] d; } t;\n\
             t s;\n\
             assign y_o = s.d == '0;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        // Default parameters elaborate fine.
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        assert_eq!(design.width("s"), Some(4));
        // Overriding W is rejected.
        let err = elaborate(
            &file,
            &ElabOptions {
                params: vec![("W".to_string(), 8)],
                ..ElabOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            err.message.contains("module-scope typedef"),
            "unexpected message: {}",
            err.message
        );
    }

    #[test]
    fn member_access_on_struct_array_is_rejected() {
        // A packed array of a struct type is not itself a struct: the
        // element layout must not leak onto the whole word.
        let src = "package p;\n\
             typedef struct packed { logic a; } s_t;\n\
             typedef s_t [3:0] v_t;\n\
           endpackage\n\
           module m (input logic clk_i, input p::v_t x_i, output logic y_o);\n\
             assign y_o = x_i.a;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let err = elaborate(&file, &ElabOptions::default()).unwrap_err();
        assert!(
            err.message.contains("not a packed struct"),
            "unexpected message: {}",
            err.message
        );
    }

    #[test]
    fn unknown_field_render_skips_longer_identifier_matches() {
        // The caret locator must not match `s.fu` inside `bus.full`: the
        // needle has to sit at identifier boundaries.
        let src = "package p;\n\
             typedef struct packed { logic [1:0] data; } s_t;\n\
           endpackage\n\
           module m (input logic clk_i, input logic bus_full_x, input p::s_t s,\n\
               output logic y_o);\n\
             wire q = bus.full_x;\n\
             assign y_o = s.fu == 1'b1;\n\
           endmodule";
        // (`bus.full_x` itself would error first during sorted resolution of
        // `q`; check the renderer directly on the structured error instead.)
        let err = ElabError::field_error(
            "s",
            "fu",
            &StructLayout {
                name: "s_t".into(),
                width: 2,
                fields: vec![FieldLayout {
                    name: "data".into(),
                    offset: 0,
                    width: 2,
                    layout: None,
                }],
            },
        );
        let rendered = err.render(src);
        // The snippet must point at line 7 (`s.fu == ...`), not at the
        // `bus.full_x` substring match on line 6.
        assert!(rendered.starts_with("7:"), "rendered: {rendered}");
        assert!(
            rendered.contains("valid fields of `s_t`: data"),
            "rendered: {rendered}"
        );
    }

    #[test]
    fn acyclic_per_port_instance_path_elaborates() {
        // in -> instance -> out -> (gates the instance's own input): acyclic
        // per port, a false cycle under instance-atomic elaboration.
        let src = "module stage (input logic clk_i, input logic rst_ni,\n\
             input logic push_i, output logic rdy_o);\n\
             logic full_q;\n\
             always_ff @(posedge clk_i or negedge rst_ni) begin\n\
               if (!rst_ni) full_q <= 1'b0;\n\
               else full_q <= push_i && rdy_o;\n\
             end\n\
             assign rdy_o = !full_q;\n\
           endmodule\n\
           module top (input logic clk_i, input logic rst_ni, input logic req_i,\n\
             output logic ok_o);\n\
             logic rdy;\n\
             wire push = req_i && rdy;\n\
             stage u_s (.clk_i(clk_i), .rst_ni(rst_ni), .push_i(push), .rdy_o(rdy));\n\
             assign ok_o = rdy;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let design = elaborate(
            &file,
            &ElabOptions {
                top: Some("top".to_string()),
                ..ElabOptions::default()
            },
        )
        .expect("per-port acyclic instance path must elaborate");
        assert!(design.signal("u_s.full_q").is_some());
        assert_eq!(design.aig.num_latches(), 1);
    }

    #[test]
    fn genuine_cycle_through_instance_is_still_reported() {
        // The instance output feeds straight back into the input it depends
        // on combinationally — a true cycle at port granularity.
        let src = "module inv (input logic a_i, output logic y_o);\n\
             assign y_o = !a_i;\n\
           endmodule\n\
           module top (input logic clk_i, output logic y_o);\n\
             logic loop;\n\
             inv u_i (.a_i(loop), .y_o(loop));\n\
             assign y_o = loop;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let err = elaborate(
            &file,
            &ElabOptions {
                top: Some("top".to_string()),
                ..ElabOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            err.message.contains("combinational cycle"),
            "unexpected message: {}",
            err.message
        );
    }

    #[test]
    fn instance_without_output_connections_still_elaborates_state() {
        // An instance whose outputs are all unconnected still contributes
        // its latches and symbols (it may carry monitors or side state).
        let src = "module counter (input logic clk_i, input logic rst_ni, input logic en_i,\n\
             output logic [1:0] cnt_o);\n\
             logic [1:0] cnt_q;\n\
             always_ff @(posedge clk_i or negedge rst_ni) begin\n\
               if (!rst_ni) cnt_q <= 2'd0;\n\
               else if (en_i) cnt_q <= cnt_q + 2'd1;\n\
             end\n\
             assign cnt_o = cnt_q;\n\
           endmodule\n\
           module top (input logic clk_i, input logic rst_ni, input logic go_i,\n\
             output logic y_o);\n\
             counter u_c (.clk_i(clk_i), .rst_ni(rst_ni), .en_i(go_i), .cnt_o());\n\
             assign y_o = go_i;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let design = elaborate(
            &file,
            &ElabOptions {
                top: Some("top".to_string()),
                ..ElabOptions::default()
            },
        )
        .unwrap();
        assert_eq!(design.aig.num_latches(), 2);
        assert!(design.signal("u_c.cnt_q").is_some());
    }

    #[test]
    fn combinational_cycle_is_reported() {
        let src = "module cyc (input logic a, output logic y);\n\
             logic p, q;\n\
             assign p = q | a;\n\
             assign q = p;\n\
             assign y = q;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let err = elaborate(&file, &ElabOptions::default()).unwrap_err();
        assert!(err.message.contains("combinational cycle"));
    }

    #[test]
    fn reset_port_is_tied_inactive() {
        let design = elab(
            "module r (input logic clk_i, input logic rst_ni, output logic y_o);\n\
               assign y_o = rst_ni;\n\
             endmodule",
        );
        assert_eq!(design.signal("y_o"), Some(&[Lit::TRUE][..]));
        // Neither clock nor reset are model inputs.
        assert_eq!(design.aig.num_inputs(), 0);
    }

    #[test]
    fn concat_assignment_splits_msb_first() {
        let design = elab(
            "module c (input logic [3:0] ab_i, output logic [1:0] hi_o, output logic [1:0] lo_o);\n\
               always_comb begin\n\
                 {hi_o, lo_o} = ab_i;\n\
               end\n\
             endmodule",
        );
        assert_eq!(design.width("hi_o"), Some(2));
        assert_eq!(design.width("lo_o"), Some(2));
    }

    #[test]
    fn param_override_changes_width() {
        let src = "module w #(parameter W = 2) (input logic clk_i, output logic [W-1:0] y_o);\n\
             assign y_o = '0;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let design = elaborate(
            &file,
            &ElabOptions {
                params: vec![("W".to_string(), 6)],
                ..ElabOptions::default()
            },
        )
        .unwrap();
        assert_eq!(design.width("y_o"), Some(6));
    }
}
