//! Elaboration of parsed SystemVerilog into an [`Aig`].
//!
//! The elaborator supports the synthesizable subset used by the design corpus
//! of this reproduction: parameters, packed vectors, small unpacked arrays,
//! `assign`, `always_comb`, `always_ff` with asynchronous reset, module
//! instances, and the usual expression operators.  The output is a sequential
//! AIG plus a symbol table mapping hierarchical signal names to their
//! current-cycle bit vectors, which the property compiler uses to wire
//! AutoSVA expressions into the model.
//!
//! Modelling decisions:
//!
//! * the clock is implicit (one AIG step = one clock edge);
//! * the reset port is tied to its *inactive* level and the reset branch of
//!   each `always_ff` provides the latch initial values — the standard
//!   "reset as initial state" formal setup;
//! * undriven signals (and unconnected submodule inputs) become free primary
//!   inputs, which is the sound over-approximation for missing environment.

use crate::aig::{Aig, Lit};
use crate::words;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use svparse::ast::{
    AlwaysBlock, AlwaysKind, BinaryOp, CaseItem, DataType, Direction, Expr, Module, ModuleItem,
    SourceFile, Stmt, UnaryOp,
};

/// Options controlling elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabOptions {
    /// Name of the top module; `None` uses the first module in the file.
    pub top: Option<String>,
    /// Parameter overrides for the top module.
    pub params: Vec<(String, u128)>,
    /// Clock signal name (excluded from the model inputs).
    pub clock: String,
    /// Reset signal name (tied to its inactive level).
    pub reset: String,
    /// `true` when the reset is active low.
    pub reset_active_low: bool,
}

impl Default for ElabOptions {
    fn default() -> Self {
        ElabOptions {
            top: None,
            params: Vec::new(),
            clock: "clk_i".to_string(),
            reset: "rst_ni".to_string(),
            reset_active_low: true,
        }
    }
}

/// An elaboration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError {
    /// Human-readable description.
    pub message: String,
}

impl ElabError {
    fn new(message: impl Into<String>) -> Self {
        ElabError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error: {}", self.message)
    }
}

impl Error for ElabError {}

/// Result alias for elaboration.
pub type Result<T> = std::result::Result<T, ElabError>;

/// The elaborated design: circuit plus symbol table.
#[derive(Debug, Clone)]
pub struct ElabDesign {
    /// The sequential circuit.
    pub aig: Aig,
    /// Signal name (hierarchical, `inst.sig` for submodules) to current-cycle
    /// bits, LSB first.
    pub symbols: HashMap<String, Vec<Lit>>,
    /// Name of the elaborated top module.
    pub top: String,
    /// Names of the top-level ports that became free model inputs.
    pub free_inputs: Vec<String>,
    /// Resolved parameter values of the top module.
    pub params: HashMap<String, u128>,
}

impl ElabDesign {
    /// Looks up a signal's bits by name.
    pub fn signal(&self, name: &str) -> Option<&[Lit]> {
        self.symbols.get(name).map(Vec::as_slice)
    }

    /// The width of a signal, if present.
    pub fn width(&self, name: &str) -> Option<usize> {
        self.symbols.get(name).map(Vec::len)
    }
}

/// Elaborates `file` into an AIG.
///
/// # Errors
///
/// Returns an [`ElabError`] when the design uses constructs outside the
/// supported subset, when widths cannot be determined, or when combinational
/// cycles are detected.
pub fn elaborate(file: &SourceFile, options: &ElabOptions) -> Result<ElabDesign> {
    let top = match &options.top {
        Some(name) => file
            .module(name)
            .ok_or_else(|| ElabError::new(format!("top module `{name}` not found")))?,
        None => file
            .modules()
            .next()
            .ok_or_else(|| ElabError::new("source contains no modules"))?,
    };
    let mut ctx = Elaborator {
        file,
        options,
        aig: Aig::new(),
        symbols: HashMap::new(),
        free_inputs: Vec::new(),
        top_params: HashMap::new(),
    };
    let params: Vec<(String, u128)> = options.params.clone();
    ctx.elab_module(top, "", &params, &HashMap::new())?;
    Ok(ElabDesign {
        aig: ctx.aig,
        symbols: ctx.symbols,
        top: top.name.clone(),
        free_inputs: ctx.free_inputs,
        params: ctx.top_params,
    })
}

/// A value during elaboration: a packed word or an unpacked array of words.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Val {
    Word(Vec<Lit>),
    Array(Vec<Vec<Lit>>),
}

impl Val {
    fn word(self) -> Result<Vec<Lit>> {
        match self {
            Val::Word(w) => Ok(w),
            Val::Array(_) => Err(ElabError::new("expected a packed value, found an array")),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SigKind {
    Input,
    Reg,
    Wire,
}

#[derive(Debug, Clone)]
struct SigInfo {
    width: usize,
    /// Number of unpacked elements; `None` for scalars/vectors.
    array: Option<usize>,
    kind: SigKind,
}

struct Elaborator<'a> {
    file: &'a SourceFile,
    options: &'a ElabOptions,
    aig: Aig,
    symbols: HashMap<String, Vec<Lit>>,
    free_inputs: Vec<String>,
    top_params: HashMap<String, u128>,
}

/// Per-module-instance elaboration state.
struct ModuleScope {
    prefix: String,
    params: HashMap<String, u128>,
    infos: HashMap<String, SigInfo>,
    /// Current-cycle values of signals.
    values: HashMap<String, Val>,
    /// Wires not yet evaluated: name -> driver.
    pending: HashMap<String, usize>,
    /// In-progress evaluations (combinational loop detection).
    in_progress: HashSet<String>,
}

#[derive(Debug, Clone)]
enum Driver {
    /// `assign lhs = expr` — index of the module item.
    Assign(usize),
    /// A declaration initializer `wire x = expr;` — item index and declarator
    /// index within the declaration.
    DeclInit(usize, usize),
    /// Driven inside an `always_comb`/`always @*` block (item index).
    Comb(usize),
    /// Driven by an instance output (item index, port name).
    Instance(usize, String),
}

impl<'a> Elaborator<'a> {
    /// Elaborates one module instance.  `bindings` maps input-port names to
    /// parent-provided values; returns the values of the output ports.
    fn elab_module(
        &mut self,
        module: &Module,
        prefix: &str,
        param_overrides: &[(String, u128)],
        bindings: &HashMap<String, Vec<Lit>>,
    ) -> Result<HashMap<String, Vec<Lit>>> {
        // ------------------------------------------------------------------
        // Parameters.
        // ------------------------------------------------------------------
        let mut params: HashMap<String, u128> = HashMap::new();
        for p in &module.params {
            let value = match param_overrides.iter().find(|(n, _)| n == &p.name) {
                Some((_, v)) => *v,
                None => match &p.value {
                    Some(expr) => const_eval(expr, &params)?,
                    None => {
                        return Err(ElabError::new(format!(
                            "parameter `{}` of `{}` has no value",
                            p.name, module.name
                        )))
                    }
                },
            };
            params.insert(p.name.clone(), value);
        }
        for item in &module.items {
            if let ModuleItem::Param(p) = item {
                if let Some(expr) = &p.value {
                    let value = const_eval(expr, &params)?;
                    params.insert(p.name.clone(), value);
                }
            }
        }
        if prefix.is_empty() {
            self.top_params = params.clone();
        }

        // ------------------------------------------------------------------
        // Signal inventory and driver classification.
        // ------------------------------------------------------------------
        let mut scope = ModuleScope {
            prefix: prefix.to_string(),
            params,
            infos: HashMap::new(),
            values: HashMap::new(),
            pending: HashMap::new(),
            in_progress: HashSet::new(),
        };

        for port in &module.ports {
            let width = self.type_width(&port.ty, &scope.params)?;
            let array = self.array_len(&port.unpacked_dims, &scope.params)?;
            let kind = match port.direction {
                Direction::Input => SigKind::Input,
                Direction::Output | Direction::Inout => SigKind::Wire,
            };
            scope
                .infos
                .insert(port.name.clone(), SigInfo { width, array, kind });
        }
        for item in &module.items {
            if let ModuleItem::Decl(decl) = item {
                let width = self.type_width(&decl.ty, &scope.params)?;
                for name in &decl.names {
                    let array = self.array_len(&name.unpacked_dims, &scope.params)?;
                    scope.infos.entry(name.name.clone()).or_insert(SigInfo {
                        width,
                        array,
                        kind: SigKind::Wire,
                    });
                }
            }
        }

        // Registers: targets of non-blocking assignments in always_ff.
        let mut reg_names: Vec<String> = Vec::new();
        for item in &module.items {
            if let ModuleItem::Always(block) = item {
                if is_sequential(block) {
                    let mut targets = Vec::new();
                    collect_assign_targets(&block.body, false, &mut targets);
                    for t in targets {
                        if let Some(info) = scope.infos.get_mut(&t) {
                            if info.kind != SigKind::Input {
                                info.kind = SigKind::Reg;
                                if !reg_names.contains(&t) {
                                    reg_names.push(t);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Drivers for wires.
        for (idx, item) in module.items.iter().enumerate() {
            match item {
                ModuleItem::ContinuousAssign(assign) => {
                    for target in lvalue_targets(&assign.lhs) {
                        scope.pending.insert(target, idx);
                    }
                }
                ModuleItem::Always(block) if !is_sequential(block) => {
                    let mut targets = Vec::new();
                    collect_assign_targets(&block.body, true, &mut targets);
                    for t in targets {
                        scope.pending.insert(t, idx);
                    }
                }
                ModuleItem::Instance(inst) => {
                    for conn in &inst.connections {
                        if let Some(expr) = &conn.expr {
                            if let Some(name) = expr.as_ident() {
                                // Will be resolved when the instance output is
                                // needed; classification happens lazily.
                                let _ = name;
                            }
                        }
                    }
                    let _ = idx;
                }
                _ => {}
            }
        }
        let drivers: HashMap<String, Driver> = {
            let mut map = HashMap::new();
            for (idx, item) in module.items.iter().enumerate() {
                match item {
                    ModuleItem::ContinuousAssign(assign) => {
                        for target in lvalue_targets(&assign.lhs) {
                            map.insert(target, Driver::Assign(idx));
                        }
                    }
                    ModuleItem::Decl(decl) => {
                        for (di, name) in decl.names.iter().enumerate() {
                            if name.init.is_some() {
                                map.insert(name.name.clone(), Driver::DeclInit(idx, di));
                            }
                        }
                    }
                    ModuleItem::Always(block) if !is_sequential(block) => {
                        let mut targets = Vec::new();
                        collect_assign_targets(&block.body, true, &mut targets);
                        for t in targets {
                            map.insert(t, Driver::Comb(idx));
                        }
                    }
                    ModuleItem::Instance(inst) => {
                        // The instantiated module's port directions determine
                        // which connections drive parent signals.
                        if let Some(child) = self.file.module(&inst.module_name) {
                            for conn in &inst.connections {
                                if let (Some(expr), Some(port)) =
                                    (&conn.expr, child.port(&conn.name))
                                {
                                    if port.direction == Direction::Output {
                                        if let Some(name) = expr.as_ident() {
                                            map.insert(
                                                name.to_string(),
                                                Driver::Instance(idx, conn.name.clone()),
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            map
        };

        // ------------------------------------------------------------------
        // Create input bits, latch bits, and constants for clock/reset.
        // ------------------------------------------------------------------
        let is_top = prefix.is_empty();
        let port_names: Vec<String> = module.ports.iter().map(|p| p.name.clone()).collect();
        for port in &module.ports {
            let name = &port.name;
            let info = scope.infos.get(name).expect("port info").clone();
            if port.direction != Direction::Input {
                continue;
            }
            if name == &self.options.clock {
                scope
                    .values
                    .insert(name.clone(), Val::Word(vec![Lit::FALSE]));
                continue;
            }
            if name == &self.options.reset {
                let inactive = if self.options.reset_active_low {
                    Lit::TRUE
                } else {
                    Lit::FALSE
                };
                scope.values.insert(name.clone(), Val::Word(vec![inactive]));
                continue;
            }
            let value = if let Some(bound) = bindings.get(name) {
                Val::Word(words::resize(bound, info.width))
            } else if is_top {
                let bits = self.new_inputs(&format!("{prefix}{name}"), info.width);
                self.free_inputs.push(name.clone());
                Val::Word(bits)
            } else {
                // Unconnected submodule input: free input.
                let bits = self.new_inputs(&format!("{prefix}{name}"), info.width);
                Val::Word(bits)
            };
            scope.values.insert(name.clone(), value);
        }

        // Latches for registers.  Initial values come from the reset branches
        // of the always_ff blocks; default is zero.
        let mut init_values: HashMap<String, u128> = HashMap::new();
        let mut init_array_values: HashMap<String, Vec<u128>> = HashMap::new();
        for item in &module.items {
            if let ModuleItem::Always(block) = item {
                if is_sequential(block) {
                    self.collect_reset_inits(
                        block,
                        &scope.params,
                        &mut init_values,
                        &mut init_array_values,
                    )?;
                }
            }
        }
        for name in &reg_names {
            let info = scope.infos.get(name).expect("reg info").clone();
            match info.array {
                None => {
                    let init = init_values.get(name).copied().unwrap_or(0);
                    let bits = self.new_latches(&format!("{prefix}{name}"), info.width, init);
                    scope.values.insert(name.clone(), Val::Word(bits));
                }
                Some(len) => {
                    let inits = init_array_values
                        .get(name)
                        .cloned()
                        .unwrap_or_else(|| vec![init_values.get(name).copied().unwrap_or(0); len]);
                    let elems: Vec<Vec<Lit>> = (0..len)
                        .map(|i| {
                            let init = inits.get(i).copied().unwrap_or(0);
                            self.new_latches(&format!("{prefix}{name}[{i}]"), info.width, init)
                        })
                        .collect();
                    scope.values.insert(name.clone(), Val::Array(elems));
                }
            }
        }

        // ------------------------------------------------------------------
        // Resolve every signal value (wires lazily, with cycle detection).
        // ------------------------------------------------------------------
        // Resolution order fixes the AIG node numbering, and hash-map key
        // order is randomized per process — sort so the compiled model (and
        // therefore every slice fingerprint keying the on-disk proof cache)
        // is byte-stable across processes.
        let mut all_names: Vec<String> = scope.infos.keys().cloned().collect();
        all_names.sort_unstable();
        for name in &all_names {
            self.resolve_signal(module, &mut scope, &drivers, name)?;
        }

        // ------------------------------------------------------------------
        // Sequential update: compute next-state values and wire the latches.
        // ------------------------------------------------------------------
        let mut next_values: HashMap<String, Val> = HashMap::new();
        for name in &reg_names {
            next_values.insert(name.clone(), scope.values[name].clone());
        }
        for item in &module.items {
            if let ModuleItem::Always(block) = item {
                if is_sequential(block) {
                    let update = self.strip_reset_branch(block)?;
                    self.exec_stmt(
                        module,
                        &mut scope,
                        &drivers,
                        &update,
                        Lit::TRUE,
                        &mut next_values,
                    )?;
                }
            }
        }
        for name in &reg_names {
            let current = scope.values[name].clone();
            let next = next_values[name].clone();
            match (current, next) {
                (Val::Word(cur), Val::Word(next)) => {
                    let next = words::resize(&next, cur.len());
                    for (c, n) in cur.iter().zip(next.iter()) {
                        self.aig.set_latch_next(*c, *n);
                    }
                }
                (Val::Array(cur), Val::Array(next)) => {
                    for (ce, ne) in cur.iter().zip(next.iter()) {
                        let ne = words::resize(ne, ce.len());
                        for (c, n) in ce.iter().zip(ne.iter()) {
                            self.aig.set_latch_next(*c, *n);
                        }
                    }
                }
                _ => {
                    return Err(ElabError::new(format!(
                        "register `{name}` mixes array and scalar forms"
                    )))
                }
            }
        }

        // ------------------------------------------------------------------
        // Export symbols and collect output port values.
        // ------------------------------------------------------------------
        let mut outputs = HashMap::new();
        for (name, value) in &scope.values {
            match value {
                Val::Word(bits) => {
                    self.symbols.insert(format!("{prefix}{name}"), bits.clone());
                }
                Val::Array(elems) => {
                    for (i, bits) in elems.iter().enumerate() {
                        self.symbols
                            .insert(format!("{prefix}{name}[{i}]"), bits.clone());
                    }
                }
            }
        }
        for port in &module.ports {
            if port.direction == Direction::Output {
                if let Some(Val::Word(bits)) = scope.values.get(&port.name) {
                    outputs.insert(port.name.clone(), bits.clone());
                }
            }
        }
        let _ = port_names;
        Ok(outputs)
    }

    fn new_inputs(&mut self, name: &str, width: usize) -> Vec<Lit> {
        (0..width)
            .map(|i| {
                if width == 1 {
                    self.aig.add_input(name.to_string())
                } else {
                    self.aig.add_input(format!("{name}[{i}]"))
                }
            })
            .collect()
    }

    fn new_latches(&mut self, name: &str, width: usize, init: u128) -> Vec<Lit> {
        (0..width)
            .map(|i| {
                let bit_init = (init >> i) & 1 == 1;
                let bit_name = if width == 1 {
                    name.to_string()
                } else {
                    format!("{name}[{i}]")
                };
                self.aig.add_latch(bit_name, bit_init)
            })
            .collect()
    }

    fn type_width(&self, ty: &DataType, params: &HashMap<String, u128>) -> Result<usize> {
        if ty.packed_dims.is_empty() {
            return Ok(1);
        }
        let mut width = 1usize;
        for dim in &ty.packed_dims {
            let msb = const_eval(&dim.msb, params)?;
            let lsb = const_eval(&dim.lsb, params)?;
            let w = (msb.max(lsb) - msb.min(lsb) + 1) as usize;
            width *= w;
        }
        Ok(width)
    }

    fn array_len(
        &self,
        dims: &[svparse::ast::Range],
        params: &HashMap<String, u128>,
    ) -> Result<Option<usize>> {
        if dims.is_empty() {
            return Ok(None);
        }
        let dim = &dims[0];
        let msb = const_eval(&dim.msb, params)?;
        let lsb = const_eval(&dim.lsb, params)?;
        Ok(Some((msb.max(lsb) - msb.min(lsb) + 1) as usize))
    }

    /// Resolves the current-cycle value of a signal, evaluating its driver if
    /// needed.
    fn resolve_signal(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        name: &str,
    ) -> Result<Val> {
        if let Some(v) = scope.values.get(name) {
            return Ok(v.clone());
        }
        if !scope.in_progress.insert(name.to_string()) {
            return Err(ElabError::new(format!(
                "combinational cycle through signal `{name}`"
            )));
        }
        let info = scope
            .infos
            .get(name)
            .cloned()
            .ok_or_else(|| ElabError::new(format!("unknown signal `{name}`")))?;
        let value = match drivers.get(name).cloned() {
            Some(Driver::DeclInit(idx, di)) => {
                let init = match &module.items[idx] {
                    ModuleItem::Decl(d) => d.names[di].init.clone().expect("declared initializer"),
                    _ => unreachable!("driver index mismatch"),
                };
                let bits = self.eval_expr(module, scope, drivers, &init)?.word()?;
                Val::Word(words::resize(&bits, info.width))
            }
            Some(Driver::Assign(idx)) => {
                let assign = match &module.items[idx] {
                    ModuleItem::ContinuousAssign(a) => a,
                    _ => unreachable!("driver index mismatch"),
                };
                // Initialise the target with zeros, execute the single
                // assignment, and read the result back — this handles partial
                // (bit/element) targets uniformly.
                let mut env: HashMap<String, Val> = HashMap::new();
                env.insert(name.to_string(), default_value(&info));
                let stmt = Stmt::Blocking(assign.clone());
                self.exec_stmt(module, scope, drivers, &stmt, Lit::TRUE, &mut env)?;
                env.remove(name).expect("assigned value")
            }
            Some(Driver::Comb(idx)) => {
                let block = match &module.items[idx] {
                    ModuleItem::Always(b) => b.clone(),
                    _ => unreachable!("driver index mismatch"),
                };
                let mut targets = Vec::new();
                collect_assign_targets(&block.body, true, &mut targets);
                let mut env: HashMap<String, Val> = HashMap::new();
                for t in &targets {
                    if let Some(ti) = scope.infos.get(t) {
                        env.insert(t.clone(), default_value(ti));
                    }
                }
                self.exec_stmt(module, scope, drivers, &block.body, Lit::TRUE, &mut env)?;
                // Publish every signal computed by this block.
                let result = env
                    .get(name)
                    .cloned()
                    .ok_or_else(|| ElabError::new(format!("block does not assign `{name}`")))?;
                for (t, v) in env {
                    if t != name {
                        scope.values.entry(t).or_insert(v);
                    }
                }
                result
            }
            Some(Driver::Instance(idx, port)) => {
                let inst = match &module.items[idx] {
                    ModuleItem::Instance(i) => i.clone(),
                    _ => unreachable!("driver index mismatch"),
                };
                let outputs = self.elab_instance(module, scope, drivers, &inst)?;
                // Publish all outputs of this instance.
                for conn in &inst.connections {
                    if let (Some(expr), Some(bits)) = (&conn.expr, outputs.get(&conn.name)) {
                        if let Some(target) = expr.as_ident() {
                            if target != name {
                                scope
                                    .values
                                    .entry(target.to_string())
                                    .or_insert(Val::Word(bits.clone()));
                            }
                        }
                    }
                }
                let bits = outputs.get(&port).cloned().ok_or_else(|| {
                    ElabError::new(format!(
                        "instance `{}` has no output `{port}`",
                        inst.instance_name
                    ))
                })?;
                Val::Word(words::resize(&bits, info.width))
            }
            None => {
                // Undriven: free input (sound over-approximation).
                let prefix = scope.prefix.clone();
                match info.array {
                    None => Val::Word(self.new_inputs(&format!("{prefix}{name}"), info.width)),
                    Some(len) => Val::Array(
                        (0..len)
                            .map(|i| self.new_inputs(&format!("{prefix}{name}[{i}]"), info.width))
                            .collect(),
                    ),
                }
            }
        };
        scope.in_progress.remove(name);
        scope.values.insert(name.to_string(), value.clone());
        Ok(value)
    }

    fn elab_instance(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        inst: &svparse::ast::Instance,
    ) -> Result<HashMap<String, Vec<Lit>>> {
        let child = self
            .file
            .module(&inst.module_name)
            .ok_or_else(|| ElabError::new(format!("module `{}` not found", inst.module_name)))?
            .clone();
        let mut overrides = Vec::new();
        for conn in &inst.param_overrides {
            if let Some(expr) = &conn.expr {
                overrides.push((conn.name.clone(), const_eval(expr, &scope.params)?));
            }
        }
        let mut bindings = HashMap::new();
        for conn in &inst.connections {
            if let (Some(expr), Some(port)) = (&conn.expr, child.port(&conn.name)) {
                if port.direction == Direction::Input {
                    // The clock and reset of the child are tied inside
                    // elab_module; skip binding them.
                    if conn.name == self.options.clock || conn.name == self.options.reset {
                        continue;
                    }
                    let value = self.eval_expr(module, scope, drivers, expr)?.word()?;
                    bindings.insert(conn.name.clone(), value);
                }
            }
        }
        let child_prefix = format!("{}{}.", scope.prefix, inst.instance_name);
        self.elab_module(&child, &child_prefix, &overrides, &bindings)
    }

    /// Extracts initial values from the reset branch of a sequential block.
    fn collect_reset_inits(
        &self,
        block: &AlwaysBlock,
        params: &HashMap<String, u128>,
        inits: &mut HashMap<String, u128>,
        array_inits: &mut HashMap<String, Vec<u128>>,
    ) -> Result<()> {
        let Some((reset_branch, _)) = self.split_reset(block) else {
            return Ok(());
        };
        collect_const_assigns(&reset_branch, params, inits, array_inits);
        Ok(())
    }

    /// Splits a sequential block into (reset branch, update branch) when it
    /// follows the `if (!rst) ... else ...` idiom.
    fn split_reset(&self, block: &AlwaysBlock) -> Option<(Stmt, Stmt)> {
        let body = match &block.body {
            Stmt::Block(stmts) if stmts.len() == 1 => &stmts[0],
            other => other,
        };
        if let Stmt::If {
            cond,
            then_branch,
            else_branch,
        } = body
        {
            if expr_is_reset_condition(cond, &self.options.reset, self.options.reset_active_low) {
                let update = else_branch
                    .as_ref()
                    .map(|b| (**b).clone())
                    .unwrap_or(Stmt::Empty);
                return Some(((**then_branch).clone(), update));
            }
        }
        None
    }

    /// Returns the update (non-reset) portion of a sequential block.
    fn strip_reset_branch(&self, block: &AlwaysBlock) -> Result<Stmt> {
        match self.split_reset(block) {
            Some((_, update)) => Ok(update),
            None => Ok(block.body.clone()),
        }
    }

    /// Symbolically executes a statement, updating `env` (the map of assigned
    /// signals) under the path condition `cond`.
    fn exec_stmt(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        stmt: &Stmt,
        cond: Lit,
        env: &mut HashMap<String, Val>,
    ) -> Result<()> {
        match stmt {
            Stmt::Empty => Ok(()),
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.exec_stmt(module, scope, drivers, s, cond, env)?;
                }
                Ok(())
            }
            Stmt::Blocking(assign) | Stmt::NonBlocking(assign) => {
                let rhs = self.eval_expr_env(module, scope, drivers, &assign.rhs, env)?;
                self.assign_lvalue(module, scope, drivers, &assign.lhs, rhs, cond, env)
            }
            Stmt::If {
                cond: c,
                then_branch,
                else_branch,
            } => {
                let c_bits = self.eval_expr_env(module, scope, drivers, c, env)?.word()?;
                let c_lit = words::reduce_or(&mut self.aig, &c_bits);
                let then_cond = self.aig.and(cond, c_lit);
                self.exec_stmt(module, scope, drivers, then_branch, then_cond, env)?;
                if let Some(else_branch) = else_branch {
                    let not_c = c_lit.invert();
                    let else_cond = self.aig.and(cond, not_c);
                    self.exec_stmt(module, scope, drivers, else_branch, else_cond, env)?;
                }
                Ok(())
            }
            Stmt::Case { subject, items } => {
                let subject_bits = self
                    .eval_expr_env(module, scope, drivers, subject, env)?
                    .word()?;
                let mut matched_any = Lit::FALSE;
                let mut default_item: Option<&CaseItem> = None;
                for item in items {
                    if item.is_default {
                        default_item = Some(item);
                        continue;
                    }
                    let mut this_match = Lit::FALSE;
                    for label in &item.labels {
                        let label_bits = self
                            .eval_expr_env(module, scope, drivers, label, env)?
                            .word()?;
                        let m = words::eq(&mut self.aig, &subject_bits, &label_bits);
                        this_match = self.aig.or(this_match, m);
                    }
                    let not_prev = matched_any.invert();
                    let first_match = self.aig.and(this_match, not_prev);
                    let item_cond = self.aig.and(cond, first_match);
                    self.exec_stmt(module, scope, drivers, &item.body, item_cond, env)?;
                    matched_any = self.aig.or(matched_any, this_match);
                }
                if let Some(item) = default_item {
                    let not_matched = matched_any.invert();
                    let item_cond = self.aig.and(cond, not_matched);
                    self.exec_stmt(module, scope, drivers, &item.body, item_cond, env)?;
                }
                Ok(())
            }
        }
    }

    /// Assigns `rhs` to an lvalue under path condition `cond`.
    #[allow(clippy::too_many_arguments)]
    fn assign_lvalue(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        lhs: &Expr,
        rhs: Val,
        cond: Lit,
        env: &mut HashMap<String, Val>,
    ) -> Result<()> {
        match lhs {
            Expr::Ident(name) => {
                let info = scope.infos.get(name).cloned().ok_or_else(|| {
                    ElabError::new(format!("assignment to unknown signal `{name}`"))
                })?;
                let old = env
                    .get(name)
                    .cloned()
                    .unwrap_or_else(|| default_value(&info));
                let new = match (old, rhs) {
                    (Val::Word(old), rhs) => {
                        // The declared width of the target wins: the RHS is
                        // truncated or zero-extended to fit.
                        let rhs = words::resize(&rhs.word()?, old.len());
                        Val::Word(words::mux(&mut self.aig, cond, &rhs, &old))
                    }
                    (Val::Array(old), Val::Array(new)) => {
                        let merged: Vec<Vec<Lit>> = old
                            .iter()
                            .zip(new.iter())
                            .map(|(o, n)| words::mux(&mut self.aig, cond, n, o))
                            .collect();
                        Val::Array(merged)
                    }
                    (Val::Array(_), Val::Word(_)) => {
                        return Err(ElabError::new(format!(
                            "cannot assign a packed value to the whole array `{name}`"
                        )))
                    }
                };
                env.insert(name.clone(), new);
                Ok(())
            }
            Expr::Index { base, index } => {
                let name = base
                    .as_ident()
                    .ok_or_else(|| ElabError::new("indexed assignment base must be a signal"))?
                    .to_string();
                let info = scope.infos.get(&name).cloned().ok_or_else(|| {
                    ElabError::new(format!("assignment to unknown signal `{name}`"))
                })?;
                let index_bits = self
                    .eval_expr_env(module, scope, drivers, index, env)?
                    .word()?;
                let old = env
                    .get(&name)
                    .cloned()
                    .unwrap_or_else(|| default_value(&info));
                match old {
                    Val::Array(elems) => {
                        let rhs = words::resize(&rhs.word()?, info.width);
                        let mut new_elems = Vec::with_capacity(elems.len());
                        for (i, elem) in elems.iter().enumerate() {
                            let idx_const = words::constant(i as u128, index_bits.len().max(1));
                            let is_this = words::eq(&mut self.aig, &index_bits, &idx_const);
                            let write = self.aig.and(cond, is_this);
                            new_elems.push(words::mux(&mut self.aig, write, &rhs, elem));
                        }
                        env.insert(name, Val::Array(new_elems));
                        Ok(())
                    }
                    Val::Word(bits) => {
                        // Single-bit write into a packed vector.
                        let rhs = rhs.word()?;
                        let rhs_bit = rhs.first().copied().unwrap_or(Lit::FALSE);
                        let mut new_bits = Vec::with_capacity(bits.len());
                        for (i, &bit) in bits.iter().enumerate() {
                            let idx_const = words::constant(i as u128, index_bits.len().max(1));
                            let is_this = words::eq(&mut self.aig, &index_bits, &idx_const);
                            let write = self.aig.and(cond, is_this);
                            new_bits.push(self.aig.mux(write, rhs_bit, bit));
                        }
                        env.insert(name, Val::Word(new_bits));
                        Ok(())
                    }
                }
            }
            Expr::RangeSelect { base, msb, lsb } => {
                let name = base
                    .as_ident()
                    .ok_or_else(|| ElabError::new("range assignment base must be a signal"))?
                    .to_string();
                let info = scope.infos.get(&name).cloned().ok_or_else(|| {
                    ElabError::new(format!("assignment to unknown signal `{name}`"))
                })?;
                let msb = const_eval(msb, &scope.params)? as usize;
                let lsb = const_eval(lsb, &scope.params)? as usize;
                let old = env
                    .get(&name)
                    .cloned()
                    .unwrap_or_else(|| default_value(&info))
                    .word()?;
                let rhs = words::resize(&rhs.word()?, msb - lsb + 1);
                let mut new_bits = old.clone();
                for (k, bit) in rhs.iter().enumerate() {
                    let pos = lsb + k;
                    if pos < new_bits.len() {
                        new_bits[pos] = self.aig.mux(cond, *bit, old[pos]);
                    }
                }
                env.insert(name, Val::Word(new_bits));
                Ok(())
            }
            Expr::Concat(parts) => {
                // {a, b} = rhs — split MSB-first.
                let rhs_bits = rhs.word()?;
                let mut widths = Vec::new();
                for part in parts {
                    let name = part
                        .as_ident()
                        .ok_or_else(|| ElabError::new("concat assignment parts must be signals"))?;
                    let info = scope
                        .infos
                        .get(name)
                        .ok_or_else(|| ElabError::new(format!("unknown signal `{name}`")))?;
                    widths.push(info.width);
                }
                let total: usize = widths.iter().sum();
                let rhs_bits = words::resize(&rhs_bits, total);
                // parts[0] is the most significant.
                let mut offset = total;
                for (part, width) in parts.iter().zip(widths.iter()) {
                    offset -= width;
                    let slice = rhs_bits[offset..offset + width].to_vec();
                    self.assign_lvalue(module, scope, drivers, part, Val::Word(slice), cond, env)?;
                }
                Ok(())
            }
            other => Err(ElabError::new(format!(
                "unsupported assignment target: {other:?}"
            ))),
        }
    }

    /// Evaluates an expression in the current scope (no statement-local
    /// environment).
    fn eval_expr(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        expr: &Expr,
    ) -> Result<Val> {
        let mut env = HashMap::new();
        self.eval_expr_env(module, scope, drivers, expr, &mut env)
    }

    /// Evaluates an expression, preferring values from the statement-local
    /// environment `env` (for signals mid-update inside a procedural block).
    fn eval_expr_env(
        &mut self,
        module: &Module,
        scope: &mut ModuleScope,
        drivers: &HashMap<String, Driver>,
        expr: &Expr,
        env: &mut HashMap<String, Val>,
    ) -> Result<Val> {
        match expr {
            Expr::Number(n) => {
                let width = n.width.map(|w| w as usize).unwrap_or(32);
                let value = n.value.unwrap_or(0);
                Ok(Val::Word(words::constant(value, width.max(1))))
            }
            Expr::Str(_) => Err(ElabError::new("string literals are not synthesizable")),
            Expr::Macro(name) => Err(ElabError::new(format!(
                "macro `{name}` cannot be elaborated"
            ))),
            Expr::Ident(name) => {
                if let Some(v) = env.get(name) {
                    return Ok(v.clone());
                }
                if let Some(&value) = scope.params.get(name) {
                    return Ok(Val::Word(words::constant(value, 32)));
                }
                if scope.infos.contains_key(name) {
                    return self.resolve_signal(module, scope, drivers, name);
                }
                Err(ElabError::new(format!("unknown identifier `{name}`")))
            }
            Expr::Unary { op, operand } => {
                let v = self
                    .eval_expr_env(module, scope, drivers, operand, env)?
                    .word()?;
                let result = match op {
                    UnaryOp::LogicalNot => vec![words::reduce_or(&mut self.aig, &v).invert()],
                    UnaryOp::BitwiseNot => words::not(&v),
                    UnaryOp::Negate => {
                        let zero = words::constant(0, v.len());
                        words::sub(&mut self.aig, &zero, &v)
                    }
                    UnaryOp::Plus => v,
                    UnaryOp::ReduceAnd => vec![words::reduce_and(&mut self.aig, &v)],
                    UnaryOp::ReduceOr => vec![words::reduce_or(&mut self.aig, &v)],
                    UnaryOp::ReduceXor => vec![words::reduce_xor(&mut self.aig, &v)],
                    UnaryOp::ReduceNand => vec![words::reduce_and(&mut self.aig, &v).invert()],
                    UnaryOp::ReduceNor => vec![words::reduce_or(&mut self.aig, &v).invert()],
                    UnaryOp::ReduceXnor => vec![words::reduce_xor(&mut self.aig, &v).invert()],
                };
                Ok(Val::Word(result))
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self
                    .eval_expr_env(module, scope, drivers, lhs, env)?
                    .word()?;
                let b = self
                    .eval_expr_env(module, scope, drivers, rhs, env)?
                    .word()?;
                let aig = &mut self.aig;
                let result = match op {
                    BinaryOp::Add => words::add(aig, &a, &b),
                    BinaryOp::Sub => words::sub(aig, &a, &b),
                    BinaryOp::Mul => words::mul(aig, &a, &b),
                    BinaryOp::Div | BinaryOp::Mod | BinaryOp::Pow => {
                        // Only constant operands are supported.
                        let ca = words::as_constant(&a);
                        let cb = words::as_constant(&b);
                        match (ca, cb, op) {
                            (Some(x), Some(y), BinaryOp::Div) if y != 0 => {
                                words::constant(x / y, a.len())
                            }
                            (Some(x), Some(y), BinaryOp::Mod) if y != 0 => {
                                words::constant(x % y, a.len())
                            }
                            (Some(x), Some(y), BinaryOp::Pow) => {
                                words::constant(x.pow(y as u32), a.len().max(8))
                            }
                            _ => {
                                return Err(ElabError::new(
                                    "division/modulo of non-constant operands is unsupported",
                                ))
                            }
                        }
                    }
                    BinaryOp::LogicalAnd => {
                        let ra = words::reduce_or(aig, &a);
                        let rb = words::reduce_or(aig, &b);
                        vec![aig.and(ra, rb)]
                    }
                    BinaryOp::LogicalOr => {
                        let ra = words::reduce_or(aig, &a);
                        let rb = words::reduce_or(aig, &b);
                        vec![aig.or(ra, rb)]
                    }
                    BinaryOp::BitAnd => words::bitwise(aig, &a, &b, |g, x, y| g.and(x, y)),
                    BinaryOp::BitOr => words::bitwise(aig, &a, &b, |g, x, y| g.or(x, y)),
                    BinaryOp::BitXor => words::bitwise(aig, &a, &b, |g, x, y| g.xor(x, y)),
                    BinaryOp::BitXnor => words::bitwise(aig, &a, &b, |g, x, y| g.xnor(x, y)),
                    BinaryOp::Eq | BinaryOp::CaseEq => vec![words::eq(aig, &a, &b)],
                    BinaryOp::Ne | BinaryOp::CaseNe => vec![words::eq(aig, &a, &b).invert()],
                    BinaryOp::Lt => vec![words::ult(aig, &a, &b)],
                    BinaryOp::Le => vec![words::ule(aig, &a, &b)],
                    BinaryOp::Gt => vec![words::ult(aig, &b, &a)],
                    BinaryOp::Ge => vec![words::ule(aig, &b, &a)],
                    BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => {
                        let amount = words::as_constant(&b).ok_or_else(|| {
                            ElabError::new("shift amounts must be constant expressions")
                        })? as usize;
                        match op {
                            BinaryOp::Shl => words::shl_const(&a, amount),
                            _ => words::shr_const(&a, amount),
                        }
                    }
                };
                Ok(Val::Word(result))
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let c = self
                    .eval_expr_env(module, scope, drivers, cond, env)?
                    .word()?;
                let c_lit = words::reduce_or(&mut self.aig, &c);
                let t = self
                    .eval_expr_env(module, scope, drivers, then_expr, env)?
                    .word()?;
                let e = self
                    .eval_expr_env(module, scope, drivers, else_expr, env)?
                    .word()?;
                Ok(Val::Word(words::mux(&mut self.aig, c_lit, &t, &e)))
            }
            Expr::Index { base, index } => {
                let base_val = self.eval_expr_env(module, scope, drivers, base, env)?;
                let index_bits = self
                    .eval_expr_env(module, scope, drivers, index, env)?
                    .word()?;
                match base_val {
                    Val::Array(elems) => {
                        Ok(Val::Word(words::select(&mut self.aig, &elems, &index_bits)))
                    }
                    Val::Word(bits) => {
                        let singles: Vec<Vec<Lit>> = bits.iter().map(|&b| vec![b]).collect();
                        Ok(Val::Word(words::select(
                            &mut self.aig,
                            &singles,
                            &index_bits,
                        )))
                    }
                }
            }
            Expr::RangeSelect { base, msb, lsb } => {
                let base_bits = self
                    .eval_expr_env(module, scope, drivers, base, env)?
                    .word()?;
                let msb = const_eval(msb, &scope.params)? as usize;
                let lsb = const_eval(lsb, &scope.params)? as usize;
                let hi = msb.max(lsb);
                let lo = msb.min(lsb);
                let mut out = Vec::new();
                for i in lo..=hi {
                    out.push(base_bits.get(i).copied().unwrap_or(Lit::FALSE));
                }
                Ok(Val::Word(out))
            }
            Expr::Member { base, member } => Err(ElabError::new(format!(
                "struct member access `{:?}.{member}` is not supported by the elaborator",
                base
            ))),
            Expr::Concat(parts) => {
                // SystemVerilog concatenation lists the MSB part first.
                let mut bits = Vec::new();
                for part in parts.iter().rev() {
                    let mut v = self
                        .eval_expr_env(module, scope, drivers, part, env)?
                        .word()?;
                    bits.append(&mut v);
                }
                Ok(Val::Word(bits))
            }
            Expr::Replicate { count, value } => {
                let n = const_eval(count, &scope.params)? as usize;
                let v = self
                    .eval_expr_env(module, scope, drivers, value, env)?
                    .word()?;
                let mut bits = Vec::with_capacity(n * v.len());
                for _ in 0..n {
                    bits.extend_from_slice(&v);
                }
                Ok(Val::Word(bits))
            }
            Expr::Call {
                name,
                is_system,
                args,
            } => {
                if *is_system && name == "clog2" {
                    let arg = const_eval(
                        args.first()
                            .ok_or_else(|| ElabError::new("$clog2 requires an argument"))?,
                        &scope.params,
                    )?;
                    let result = clog2(arg);
                    return Ok(Val::Word(words::constant(result, 32)));
                }
                if *is_system && (name == "unsigned" || name == "signed") {
                    return self.eval_expr_env(module, scope, drivers, &args[0], env);
                }
                Err(ElabError::new(format!(
                    "call to `{}{name}` is not supported",
                    if *is_system { "$" } else { "" }
                )))
            }
        }
    }
}

fn default_value(info: &SigInfo) -> Val {
    match info.array {
        None => Val::Word(words::constant(0, info.width)),
        Some(len) => Val::Array(vec![words::constant(0, info.width); len]),
    }
}

fn clog2(value: u128) -> u128 {
    if value <= 1 {
        0
    } else {
        (128 - (value - 1).leading_zeros()) as u128
    }
}

/// `true` when the always block is edge-sensitive (a flip-flop description).
fn is_sequential(block: &AlwaysBlock) -> bool {
    match block.kind {
        AlwaysKind::Ff => true,
        AlwaysKind::Comb | AlwaysKind::Initial => false,
        AlwaysKind::Plain => block.sensitivity.iter().any(|e| e.posedge.is_some()),
    }
}

/// Collects the base signal names assigned anywhere inside a statement.
fn collect_assign_targets(stmt: &Stmt, blocking: bool, out: &mut Vec<String>) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                collect_assign_targets(s, blocking, out);
            }
        }
        Stmt::Blocking(a) => {
            if blocking {
                out.extend(lvalue_targets(&a.lhs));
            } else {
                // Blocking assignments inside always_ff also create state.
                out.extend(lvalue_targets(&a.lhs));
            }
        }
        Stmt::NonBlocking(a) => out.extend(lvalue_targets(&a.lhs)),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_assign_targets(then_branch, blocking, out);
            if let Some(e) = else_branch {
                collect_assign_targets(e, blocking, out);
            }
        }
        Stmt::Case { items, .. } => {
            for item in items {
                collect_assign_targets(&item.body, blocking, out);
            }
        }
        Stmt::Empty => {}
    }
}

/// Base signal names written by an lvalue expression.
fn lvalue_targets(lhs: &Expr) -> Vec<String> {
    match lhs {
        Expr::Ident(name) => vec![name.clone()],
        Expr::Index { base, .. } | Expr::RangeSelect { base, .. } => lvalue_targets(base),
        Expr::Concat(parts) => parts.iter().flat_map(lvalue_targets).collect(),
        Expr::Member { base, .. } => lvalue_targets(base),
        _ => Vec::new(),
    }
}

/// Collects constant assignments from a reset branch.
fn collect_const_assigns(
    stmt: &Stmt,
    params: &HashMap<String, u128>,
    inits: &mut HashMap<String, u128>,
    array_inits: &mut HashMap<String, Vec<u128>>,
) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                collect_const_assigns(s, params, inits, array_inits);
            }
        }
        Stmt::Blocking(a) | Stmt::NonBlocking(a) => {
            if let Some(name) = a.lhs.as_ident() {
                if let Ok(v) = const_eval(&a.rhs, params) {
                    inits.insert(name.to_string(), v);
                }
            } else if let Expr::Index { base, index } = &a.lhs {
                if let (Some(name), Ok(idx), Ok(v)) = (
                    base.as_ident(),
                    const_eval(index, params),
                    const_eval(&a.rhs, params),
                ) {
                    let entry = array_inits.entry(name.to_string()).or_default();
                    let idx = idx as usize;
                    if entry.len() <= idx {
                        entry.resize(idx + 1, 0);
                    }
                    entry[idx] = v;
                }
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_const_assigns(then_branch, params, inits, array_inits);
            if let Some(e) = else_branch {
                collect_const_assigns(e, params, inits, array_inits);
            }
        }
        Stmt::Case { items, .. } => {
            for item in items {
                collect_const_assigns(&item.body, params, inits, array_inits);
            }
        }
        Stmt::Empty => {}
    }
}

/// `true` if `expr` tests that the reset is asserted.
fn expr_is_reset_condition(expr: &Expr, reset: &str, active_low: bool) -> bool {
    match expr {
        Expr::Unary {
            op: UnaryOp::LogicalNot | UnaryOp::BitwiseNot,
            operand,
        } => active_low && operand.as_ident() == Some(reset),
        Expr::Ident(name) => !active_low && name == reset,
        Expr::Binary {
            op: BinaryOp::Eq,
            lhs,
            rhs,
        } => {
            let (id, num) = match (lhs.as_ident(), rhs.as_ref()) {
                (Some(id), Expr::Number(n)) => (id, n.value),
                _ => match (rhs.as_ident(), lhs.as_ref()) {
                    (Some(id), Expr::Number(n)) => (id, n.value),
                    _ => return false,
                },
            };
            id == reset && num == Some(if active_low { 0 } else { 1 })
        }
        _ => false,
    }
}

/// Evaluates a constant expression over a parameter environment.
///
/// # Errors
///
/// Returns an error if the expression references signals or uses unsupported
/// operators.
pub fn const_eval(expr: &Expr, params: &HashMap<String, u128>) -> Result<u128> {
    match expr {
        Expr::Number(n) => n
            .value
            .ok_or_else(|| ElabError::new("x/z literal in constant expression")),
        Expr::Ident(name) => params
            .get(name)
            .copied()
            .ok_or_else(|| ElabError::new(format!("`{name}` is not a constant parameter"))),
        Expr::Unary { op, operand } => {
            let v = const_eval(operand, params)?;
            Ok(match op {
                UnaryOp::LogicalNot => u128::from(v == 0),
                UnaryOp::BitwiseNot => !v,
                UnaryOp::Negate => v.wrapping_neg(),
                UnaryOp::Plus => v,
                _ => return Err(ElabError::new("reduction in constant expression")),
            })
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = const_eval(lhs, params)?;
            let b = const_eval(rhs, params)?;
            Ok(match op {
                BinaryOp::Add => a.wrapping_add(b),
                BinaryOp::Sub => a.wrapping_sub(b),
                BinaryOp::Mul => a.wrapping_mul(b),
                BinaryOp::Div => {
                    if b == 0 {
                        return Err(ElabError::new("division by zero in constant expression"));
                    }
                    a / b
                }
                BinaryOp::Mod => {
                    if b == 0 {
                        return Err(ElabError::new("modulo by zero in constant expression"));
                    }
                    a % b
                }
                BinaryOp::Pow => a.pow(b as u32),
                BinaryOp::Shl => a << b,
                BinaryOp::Shr | BinaryOp::AShr => a >> b,
                BinaryOp::BitAnd => a & b,
                BinaryOp::BitOr => a | b,
                BinaryOp::BitXor => a ^ b,
                BinaryOp::BitXnor => !(a ^ b),
                BinaryOp::LogicalAnd => u128::from(a != 0 && b != 0),
                BinaryOp::LogicalOr => u128::from(a != 0 || b != 0),
                BinaryOp::Eq | BinaryOp::CaseEq => u128::from(a == b),
                BinaryOp::Ne | BinaryOp::CaseNe => u128::from(a != b),
                BinaryOp::Lt => u128::from(a < b),
                BinaryOp::Le => u128::from(a <= b),
                BinaryOp::Gt => u128::from(a > b),
                BinaryOp::Ge => u128::from(a >= b),
            })
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            if const_eval(cond, params)? != 0 {
                const_eval(then_expr, params)
            } else {
                const_eval(else_expr, params)
            }
        }
        Expr::Call {
            name,
            is_system: true,
            args,
        } if name == "clog2" => {
            let v = const_eval(
                args.first()
                    .ok_or_else(|| ElabError::new("$clog2 requires an argument"))?,
                params,
            )?;
            Ok(clog2(v))
        }
        other => Err(ElabError::new(format!(
            "expression is not a constant: {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmc::{check_safety, BmcOptions, SafetyResult};
    use crate::model::{BadProperty, Model};

    fn elab(src: &str) -> ElabDesign {
        let file = svparse::parse(src).expect("parse");
        elaborate(&file, &ElabOptions::default()).expect("elaborate")
    }

    #[test]
    fn const_eval_basics() {
        let params: HashMap<String, u128> = [("W".to_string(), 8u128)].into_iter().collect();
        let e = svparse::parse_expr("W - 1").unwrap();
        assert_eq!(const_eval(&e, &params).unwrap(), 7);
        let e = svparse::parse_expr("$clog2(W)").unwrap();
        assert_eq!(const_eval(&e, &params).unwrap(), 3);
        let e = svparse::parse_expr("2 ** 4 + 1").unwrap();
        assert_eq!(const_eval(&e, &params).unwrap(), 17);
        let e = svparse::parse_expr("W > 4 ? 10 : 20").unwrap();
        assert_eq!(const_eval(&e, &params).unwrap(), 10);
        assert!(const_eval(&svparse::parse_expr("missing").unwrap(), &params).is_err());
    }

    #[test]
    fn clog2_values() {
        assert_eq!(clog2(0), 0);
        assert_eq!(clog2(1), 0);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(5), 3);
        assert_eq!(clog2(8), 3);
        assert_eq!(clog2(9), 4);
    }

    #[test]
    fn elaborate_combinational_logic() {
        let design = elab(
            "module comb (input logic a, input logic b, output logic y, output logic z);\n\
               assign y = a & b;\n\
               assign z = a | ~b;\n\
             endmodule",
        );
        assert_eq!(design.top, "comb");
        assert!(design.signal("y").is_some());
        assert_eq!(design.width("y"), Some(1));
        assert_eq!(design.aig.num_latches(), 0);
        assert_eq!(design.aig.num_inputs(), 2);
    }

    #[test]
    fn elaborate_counter_and_check_reachability() {
        let src = "module counter (input logic clk_i, input logic rst_ni, input logic en_i, output logic [2:0] cnt_o);\n\
             logic [2:0] cnt_q;\n\
             always_ff @(posedge clk_i or negedge rst_ni) begin\n\
               if (!rst_ni) cnt_q <= 3'd0;\n\
               else if (en_i) cnt_q <= cnt_q + 3'd1;\n\
             end\n\
             assign cnt_o = cnt_q;\n\
           endmodule";
        let design = elab(src);
        assert_eq!(design.aig.num_latches(), 3);
        // The counter can reach 7 but a value can only be reached after
        // enough enabled cycles.
        let cnt = design.signal("cnt_q").unwrap().to_vec();
        let mut model = Model::new(design.aig.clone());
        let target = words::eq(&mut model.aig, &cnt, &words::constant(5, 3));
        model.bads.push(BadProperty {
            name: "reaches5".into(),
            lit: target,
        });
        match check_safety(&model, 0, &BmcOptions::default()) {
            SafetyResult::Violated(trace) => assert_eq!(trace.len(), 6),
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn reset_values_become_latch_inits() {
        let src =
            "module initval (input logic clk_i, input logic rst_ni, output logic [3:0] q_o);\n\
             logic [3:0] q;\n\
             always_ff @(posedge clk_i or negedge rst_ni) begin\n\
               if (!rst_ni) q <= 4'd9;\n\
               else q <= q;\n\
             end\n\
             assign q_o = q;\n\
           endmodule";
        let design = elab(src);
        let inits: u128 = design
            .aig
            .latches()
            .iter()
            .enumerate()
            .map(|(i, l)| if l.init { 1 << i } else { 0 })
            .sum();
        assert_eq!(inits, 9);
    }

    #[test]
    fn parameters_and_localparams_resolve() {
        let src = "module p #(parameter W = 4, parameter DEPTH = 2**W) (input logic clk_i, output logic [W-1:0] x_o);\n\
             localparam HALF = DEPTH / 2;\n\
             assign x_o = HALF[W-1:0];\n\
           endmodule";
        let design = elab(src);
        assert_eq!(design.width("x_o"), Some(4));
        // HALF = 8 -> x_o == 8
        let bits = design.signal("x_o").unwrap();
        assert_eq!(words::as_constant(bits), Some(8));
    }

    #[test]
    fn always_comb_case_statement() {
        let src = "module dec (input logic [1:0] sel_i, output logic [3:0] onehot_o);\n\
             always_comb begin\n\
               onehot_o = 4'b0000;\n\
               case (sel_i)\n\
                 2'd0: onehot_o = 4'b0001;\n\
                 2'd1: onehot_o = 4'b0010;\n\
                 2'd2: onehot_o = 4'b0100;\n\
                 default: onehot_o = 4'b1000;\n\
               endcase\n\
             end\n\
           endmodule";
        let design = elab(src);
        assert_eq!(design.width("onehot_o"), Some(4));
        assert_eq!(design.aig.num_inputs(), 2);
    }

    #[test]
    fn unpacked_array_with_dynamic_index() {
        let src = "module regfile (input logic clk_i, input logic rst_ni,\n\
             input logic we_i, input logic [1:0] waddr_i, input logic [7:0] wdata_i,\n\
             input logic [1:0] raddr_i, output logic [7:0] rdata_o);\n\
             logic [7:0] mem [0:3];\n\
             always_ff @(posedge clk_i or negedge rst_ni) begin\n\
               if (!rst_ni) begin\n\
                 mem[0] <= 8'd0; mem[1] <= 8'd0; mem[2] <= 8'd0; mem[3] <= 8'd0;\n\
               end else if (we_i) begin\n\
                 mem[waddr_i] <= wdata_i;\n\
               end\n\
             end\n\
             assign rdata_o = mem[raddr_i];\n\
           endmodule";
        let design = elab(src);
        assert_eq!(design.aig.num_latches(), 32);
        assert!(design.signal("mem[2]").is_some());
        assert_eq!(design.width("rdata_o"), Some(8));
    }

    #[test]
    fn module_instances_are_elaborated_hierarchically() {
        let src = "module inner (input logic clk_i, input logic rst_ni, input logic d_i, output logic q_o);\n\
             logic q;\n\
             always_ff @(posedge clk_i or negedge rst_ni) begin\n\
               if (!rst_ni) q <= 1'b0; else q <= d_i;\n\
             end\n\
             assign q_o = q;\n\
           endmodule\n\
           module outer (input logic clk_i, input logic rst_ni, input logic d_i, output logic q_o);\n\
             logic mid;\n\
             inner u_first (.clk_i(clk_i), .rst_ni(rst_ni), .d_i(d_i), .q_o(mid));\n\
             inner u_second (.clk_i(clk_i), .rst_ni(rst_ni), .d_i(mid), .q_o(q_o));\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let design = elaborate(
            &file,
            &ElabOptions {
                top: Some("outer".to_string()),
                ..ElabOptions::default()
            },
        )
        .unwrap();
        assert_eq!(design.top, "outer");
        assert_eq!(design.aig.num_latches(), 2);
        assert!(design.signal("u_first.q").is_some());
        assert!(design.signal("u_second.q").is_some());
        assert!(design.signal("q_o").is_some());
    }

    #[test]
    fn undriven_signal_becomes_free_input() {
        let design = elab(
            "module free (input logic clk_i, output logic y_o);\n\
               logic mystery;\n\
               assign y_o = mystery;\n\
             endmodule",
        );
        // `mystery` has no driver: it must appear as an AIG input.
        assert_eq!(design.aig.num_inputs(), 1);
    }

    #[test]
    fn combinational_cycle_is_reported() {
        let src = "module cyc (input logic a, output logic y);\n\
             logic p, q;\n\
             assign p = q | a;\n\
             assign q = p;\n\
             assign y = q;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let err = elaborate(&file, &ElabOptions::default()).unwrap_err();
        assert!(err.message.contains("combinational cycle"));
    }

    #[test]
    fn reset_port_is_tied_inactive() {
        let design = elab(
            "module r (input logic clk_i, input logic rst_ni, output logic y_o);\n\
               assign y_o = rst_ni;\n\
             endmodule",
        );
        assert_eq!(design.signal("y_o"), Some(&[Lit::TRUE][..]));
        // Neither clock nor reset are model inputs.
        assert_eq!(design.aig.num_inputs(), 0);
    }

    #[test]
    fn concat_assignment_splits_msb_first() {
        let design = elab(
            "module c (input logic [3:0] ab_i, output logic [1:0] hi_o, output logic [1:0] lo_o);\n\
               always_comb begin\n\
                 {hi_o, lo_o} = ab_i;\n\
               end\n\
             endmodule",
        );
        assert_eq!(design.width("hi_o"), Some(2));
        assert_eq!(design.width("lo_o"), Some(2));
    }

    #[test]
    fn param_override_changes_width() {
        let src = "module w #(parameter W = 2) (input logic clk_i, output logic [W-1:0] y_o);\n\
             assign y_o = '0;\n\
           endmodule";
        let file = svparse::parse(src).unwrap();
        let design = elaborate(
            &file,
            &ElabOptions {
                params: vec![("W".to_string(), 6)],
                ..ElabOptions::default()
            },
        )
        .unwrap();
        assert_eq!(design.width("y_o"), Some(6));
    }
}
