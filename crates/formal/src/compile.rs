//! Compilation of an AutoSVA formal testbench into a checkable [`Model`].
//!
//! The AutoSVA core crate produces a structured testbench: auxiliary signals
//! (handshake wires, symbolic transaction IDs, outstanding-transaction
//! counters, data sampling registers) and SVA properties over the DUT
//! interface and those auxiliary signals.  This module elaborates the
//! auxiliary signals on top of the elaborated DUT and lowers every property
//! into the bad/constraint/cover/response literals the verification engines
//! understand.

use crate::aig::{Aig, Lit};
use crate::elab::{const_eval, ElabDesign, ElabError, Result};
use crate::model::{BadProperty, CoverProperty, Model, ResponseProperty};
use crate::words;
use autosva::annotation::WidthSpec;
use autosva::signals::{AuxKind, AuxSignal};
use autosva::sva::{Consequent, Directive, PropertyBody, SvaProperty};
use autosva::FormalTestbench;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use svparse::ast::{BinaryOp, Expr, UnaryOp};

/// How each property of the testbench was mapped into the model, so the
/// checker can report results per property class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledKind {
    /// Checked as a bad-state (safety) property; index into [`Model::bads`].
    Safety(usize),
    /// Checked as a liveness property; index into [`Model::liveness`].
    Liveness(usize),
    /// Checked as a cover property; index into [`Model::covers`].
    Cover(usize),
    /// Added as an invariant constraint (assumption).
    Constraint,
    /// Added as a fairness assumption.
    Fairness,
    /// Not checked by the formal engine (e.g. X-propagation assertions are
    /// simulation-only).
    Skipped(&'static str),
}

/// A property of the testbench together with its compiled form.
#[derive(Debug, Clone)]
pub struct CompiledProperty {
    /// The original SVA property.
    pub property: SvaProperty,
    /// How it is checked.
    pub kind: CompiledKind,
}

/// Facts the compiler collects as a side effect of lowering annotations, for
/// the design lint ([`crate::lint`]).  Collecting them here costs nothing and
/// keeps the lint pass from re-implementing the resolution rules.
#[derive(Debug, Clone, Default)]
pub struct CompileLintFacts {
    /// `port.field` accesses that only resolved through the *naming
    /// convention* fallback (`port_field`): requested path → bound symbol.
    /// The binding is a guess, so the lint surfaces it instead of staying
    /// silent.
    pub fallback_bindings: BTreeMap<String, String>,
    /// Auxiliary signals whose declared width disagrees with the width of the
    /// expression that defines or feeds them: (name, declared, actual,
    /// needle).  The needle is the first identifier of the offending
    /// expression — generated aux names never appear in the source verbatim,
    /// so the lint locates the finding by what the annotation actually wrote.
    pub width_mismatches: Vec<(String, usize, usize, Option<String>)>,
    /// Every design/aux symbol an annotation expression resolved to — the
    /// read set the unused-signal and coverage-gap lints start from.
    pub referenced_symbols: BTreeSet<String>,
}

/// The compiled model: the circuit with properties plus per-property mapping.
#[derive(Debug, Clone)]
pub struct CompiledTestbench {
    /// The model to check.
    pub model: Model,
    /// One entry per property of the testbench (including linked submodule
    /// properties).
    pub properties: Vec<CompiledProperty>,
    /// Bits of every auxiliary signal, for trace rendering.
    pub aux_symbols: HashMap<String, Vec<Lit>>,
    /// Side-effect facts for the design lint.
    pub lint: CompileLintFacts,
}

/// Compiles `testbench` against an already elaborated DUT.
///
/// # Errors
///
/// Fails when a property references a signal that does not exist in the
/// design, or uses an expression form outside the supported subset.
pub fn compile(design: &ElabDesign, testbench: &FormalTestbench) -> Result<CompiledTestbench> {
    let _span = crate::telemetry::span("compile", &design.top);
    let mut ctx = Compiler {
        aig: design.aig.clone(),
        symbols: design.symbols.clone(),
        params: design.params.clone(),
        types: design.types.clone(),
        signal_types: design.signal_types.clone(),
        top: design.top.clone(),
        not_first: None,
        lint: CompileLintFacts::default(),
    };

    // ------------------------------------------------------------------
    // Auxiliary signals, in dependency order (wires may reference earlier
    // wires; counters/samples reference wires).
    // ------------------------------------------------------------------
    let aux: Vec<AuxSignal> = testbench.model.aux_signals().into_iter().cloned().collect();
    // Stateless wires first pass may reference later wires in pathological
    // cases; iterate until fixed point with a bounded number of rounds.
    let mut remaining: Vec<AuxSignal> = aux.clone();
    let mut rounds = 0;
    let mut last_err: Option<ElabError> = None;
    while !remaining.is_empty() {
        rounds += 1;
        if rounds > aux.len() + 2 {
            let names: Vec<String> = remaining.iter().map(|a| a.name.clone()).collect();
            // Surface both the stuck signal set (which points at cyclic aux
            // definitions) and the underlying per-signal cause.
            return Err(match last_err {
                Some(e) => ElabError::new(format!(
                    "could not resolve auxiliary signals {names:?}: {}",
                    e.message
                )),
                None => ElabError::new(format!("could not resolve auxiliary signals: {names:?}")),
            });
        }
        let mut next_round = Vec::new();
        for sig in remaining {
            match ctx.elab_aux(&sig) {
                Ok(bits) => {
                    ctx.symbols.insert(sig.name.clone(), bits);
                }
                // A forward reference to a later aux wire is retried on the
                // next round; a structured error (e.g. an unknown struct
                // field) can never succeed later and fails fast.
                Err(e) if e.unknown_field.is_some() => return Err(e),
                Err(e) => {
                    last_err = Some(e);
                    next_round.push(sig);
                }
            }
        }
        remaining = next_round;
    }
    let aux_symbols: HashMap<String, Vec<Lit>> = aux
        .iter()
        .filter_map(|a| {
            ctx.symbols
                .get(&a.name)
                .map(|b| (a.name.clone(), b.clone()))
        })
        .collect();

    // ------------------------------------------------------------------
    // Properties.
    // ------------------------------------------------------------------
    let mut model = Model::new(Aig::new());
    let mut compiled = Vec::new();
    // The model's AIG is built inside ctx; swap it in at the end.
    let mut bads = Vec::new();
    let mut covers = Vec::new();
    let mut constraints = Vec::new();
    let mut liveness = Vec::new();
    let mut fairness = Vec::new();

    for prop in testbench.all_properties() {
        let kind = if prop.xprop_only {
            CompiledKind::Skipped("x-propagation checks run in simulation only")
        } else {
            match (&prop.directive, &prop.body) {
                (Directive::Cover, body) => {
                    let lit = ctx.body_holds_now(body)?;
                    covers.push(CoverProperty {
                        name: prop.full_name(),
                        lit,
                    });
                    CompiledKind::Cover(covers.len() - 1)
                }
                (Directive::Assert, PropertyBody::Invariant(e)) => {
                    let holds = ctx.expr_bool(e)?;
                    bads.push(BadProperty {
                        name: prop.full_name(),
                        lit: holds.invert(),
                    });
                    CompiledKind::Safety(bads.len() - 1)
                }
                (
                    Directive::Assert,
                    PropertyBody::Implication {
                        antecedent,
                        consequent,
                        non_overlap,
                    },
                ) => match consequent {
                    Consequent::Eventually(target) => {
                        let trigger = ctx.implication_trigger(antecedent, *non_overlap)?;
                        let target = ctx.expr_bool(target)?;
                        liveness.push(ResponseProperty {
                            name: prop.full_name(),
                            trigger,
                            target,
                        });
                        CompiledKind::Liveness(liveness.len() - 1)
                    }
                    _ => {
                        let violated =
                            ctx.implication_violated(antecedent, consequent, *non_overlap)?;
                        bads.push(BadProperty {
                            name: prop.full_name(),
                            lit: violated,
                        });
                        CompiledKind::Safety(bads.len() - 1)
                    }
                },
                (Directive::Assume, PropertyBody::Invariant(e)) => {
                    let holds = ctx.expr_bool(e)?;
                    constraints.push(holds);
                    CompiledKind::Constraint
                }
                (
                    Directive::Assume,
                    PropertyBody::Implication {
                        antecedent,
                        consequent,
                        non_overlap,
                    },
                ) => match consequent {
                    Consequent::Eventually(target) => {
                        let trigger = ctx.implication_trigger(antecedent, *non_overlap)?;
                        let target = ctx.expr_bool(target)?;
                        fairness.push(ResponseProperty {
                            name: prop.full_name(),
                            trigger,
                            target,
                        });
                        CompiledKind::Fairness
                    }
                    _ => {
                        let violated =
                            ctx.implication_violated(antecedent, consequent, *non_overlap)?;
                        constraints.push(violated.invert());
                        CompiledKind::Constraint
                    }
                },
            }
        };
        compiled.push(CompiledProperty {
            property: prop.clone(),
            kind,
        });
    }

    model.aig = ctx.aig;
    model.bads = bads;
    model.covers = covers;
    model.constraints = constraints;
    model.liveness = liveness;
    model.fairness = fairness;
    Ok(CompiledTestbench {
        model,
        properties: compiled,
        aux_symbols,
        lint: ctx.lint,
    })
}

struct Compiler {
    aig: Aig,
    symbols: HashMap<String, Vec<Lit>>,
    params: HashMap<String, u128>,
    /// Resolved user-defined types of the design (struct layouts, enum
    /// constants), so annotations can use `port.field` and enum members.
    types: crate::elab::TypeTable,
    /// Symbol name → struct layout index for struct-typed design signals.
    signal_types: HashMap<String, usize>,
    /// Name of the top module — the scope annotation identifiers resolve in
    /// (module-local enum members are registered as `top::MEMBER`).
    top: String,
    /// Lazily created "this is not the first cycle" latch, used by `$stable`
    /// and `|=>` lowering.
    not_first: Option<Lit>,
    /// Facts collected for the design lint while lowering.
    lint: CompileLintFacts,
}

impl Compiler {
    fn err(message: impl Into<String>) -> ElabError {
        ElabError::new(message)
    }

    fn not_first_cycle(&mut self) -> Lit {
        if let Some(l) = self.not_first {
            return l;
        }
        let latch = self.aig.add_latch("sva_not_first_cycle", false);
        self.aig.set_latch_next(latch, Lit::TRUE);
        self.not_first = Some(latch);
        latch
    }

    fn width_of(&self, spec: &Option<WidthSpec>) -> Result<usize> {
        match spec {
            None => Ok(1),
            Some(w) => {
                let msb = const_eval(&w.msb, &self.params)?;
                let lsb = const_eval(&w.lsb, &self.params)?;
                Ok((msb.max(lsb) - msb.min(lsb) + 1) as usize)
            }
        }
    }

    fn elab_aux(&mut self, sig: &AuxSignal) -> Result<Vec<Lit>> {
        match &sig.kind {
            AuxKind::Wire { def } => {
                let bits = self.expr_word(def)?;
                // The wire takes the definition's width; a disagreeing
                // declared width is kept working (legacy behaviour) but
                // reported to the lint.
                if sig.width.is_some() {
                    let declared = self.width_of(&sig.width)?;
                    if declared != bits.len() {
                        self.lint.width_mismatches.push((
                            sig.name.clone(),
                            declared,
                            bits.len(),
                            first_ident(def),
                        ));
                    }
                }
                Ok(bits)
            }
            AuxKind::Symbolic => {
                let width = self.width_of(&sig.width)?;
                // A symbolic constant: captured from a free input on the first
                // cycle and held forever, so the solver explores every value
                // while the property sees a stable quantity.
                let started = self.not_first_cycle();
                let mut bits = Vec::with_capacity(width);
                for i in 0..width {
                    let free = self.aig.add_input(format!("{}[{i}]", sig.name));
                    let hold = self.aig.add_latch(format!("{}_hold[{i}]", sig.name), false);
                    let value = self.aig.mux(started, hold, free);
                    self.aig.set_latch_next(hold, value);
                    bits.push(value);
                }
                Ok(bits)
            }
            AuxKind::Counter { incr, decr } => {
                let width = self.width_of(&sig.width)?.max(1);
                let incr = self.expr_bool(incr)?;
                let decr = self.expr_bool(decr)?;
                let bits: Vec<Lit> = (0..width)
                    .map(|i| self.aig.add_latch(format!("{}[{i}]", sig.name), false))
                    .collect();
                let one = {
                    let mut w = words::constant(0, width);
                    w[0] = incr;
                    w
                };
                let minus = {
                    let mut w = words::constant(0, width);
                    w[0] = decr;
                    w
                };
                let plus = words::add(&mut self.aig, &bits, &one);
                let next = words::sub(&mut self.aig, &plus, &minus);
                for (bit, n) in bits.iter().zip(next.iter()) {
                    self.aig.set_latch_next(*bit, *n);
                }
                Ok(bits)
            }
            AuxKind::Sample { enable, value } => {
                let value_bits = self.expr_word(value)?;
                let width = match &sig.width {
                    Some(_) => self.width_of(&sig.width)?,
                    None => value_bits.len(),
                };
                if width != value_bits.len() {
                    // The sampled value is resized to the declared width
                    // below; silently dropping (or zero-extending) bits is
                    // worth a lint warning.
                    self.lint.width_mismatches.push((
                        sig.name.clone(),
                        width,
                        value_bits.len(),
                        first_ident(value),
                    ));
                }
                let enable = self.expr_bool(enable)?;
                let bits: Vec<Lit> = (0..width)
                    .map(|i| self.aig.add_latch(format!("{}[{i}]", sig.name), false))
                    .collect();
                let value_bits = words::resize(&value_bits, width);
                let next = words::mux(&mut self.aig, enable, &value_bits, &bits);
                for (bit, n) in bits.iter().zip(next.iter()) {
                    self.aig.set_latch_next(*bit, *n);
                }
                Ok(bits)
            }
        }
    }

    /// Lowers a property body to "holds in the current cycle" (used for
    /// covers).
    fn body_holds_now(&mut self, body: &PropertyBody) -> Result<Lit> {
        match body {
            PropertyBody::Invariant(e) => self.expr_bool(e),
            PropertyBody::Implication {
                antecedent,
                consequent,
                non_overlap,
            } => {
                let violated = self.implication_violated(antecedent, consequent, *non_overlap)?;
                Ok(violated.invert())
            }
        }
    }

    /// For `a |-> s_eventually t` the liveness trigger is `a` this cycle; for
    /// `a |=> s_eventually t` it is "a held last cycle".
    fn implication_trigger(&mut self, antecedent: &Expr, non_overlap: bool) -> Result<Lit> {
        let ant = self.expr_bool(antecedent)?;
        if non_overlap {
            Ok(self.delayed(ant))
        } else {
            Ok(ant)
        }
    }

    /// Builds the "property is violated in the current cycle" literal for a
    /// (non-eventually) implication.
    fn implication_violated(
        &mut self,
        antecedent: &Expr,
        consequent: &Consequent,
        non_overlap: bool,
    ) -> Result<Lit> {
        let ant = self.expr_bool(antecedent)?;
        match consequent {
            Consequent::Expr(e) => {
                let con = self.expr_bool(e)?;
                let enable = if non_overlap { self.delayed(ant) } else { ant };
                Ok(self.aig.and(enable, con.invert()))
            }
            Consequent::Stable(e) => {
                let bits = self.expr_word(e)?;
                let prev = self.delayed_word(&bits);
                let same = self.aig.word_eq(&bits, &prev);
                let changed = same.invert();
                let enable = if non_overlap {
                    self.delayed(ant)
                } else {
                    // Overlapping $stable compares against the previous cycle,
                    // so it is only meaningful from cycle 1 onwards.
                    let nf = self.not_first_cycle();
                    self.aig.and(ant, nf)
                };
                Ok(self.aig.and(enable, changed))
            }
            Consequent::Eventually(_) => Err(Self::err(
                "eventually consequents are handled by the liveness engine",
            )),
            Consequent::NotUnknown(_) => Err(Self::err(
                "x-propagation checks cannot be lowered to the 2-state model",
            )),
        }
    }

    /// Returns a literal holding the previous-cycle value of `lit`
    /// (false at cycle 0).
    fn delayed(&mut self, lit: Lit) -> Lit {
        let latch = self.aig.add_latch("sva_delay", false);
        self.aig.set_latch_next(latch, lit);
        latch
    }

    fn delayed_word(&mut self, bits: &[Lit]) -> Vec<Lit> {
        bits.iter().map(|&b| self.delayed(b)).collect()
    }

    /// Resolves a member access against the design's struct-typed signals:
    /// `Some((symbol, lsb offset, width))` when the base is a struct-typed
    /// signal (nested members walk sub-layouts), `None` when it is not (the
    /// caller falls back to naming-convention matching).  A struct-typed
    /// base with a nonexistent field is an error carrying the valid fields.
    fn member_slice(&self, base: &Expr, member: &str) -> Result<Option<(String, usize, usize)>> {
        let Some((symbol, offset, layout_ix)) = self.struct_value_of(base)? else {
            return Ok(None);
        };
        let field = self.field_of(base, layout_ix, member)?;
        Ok(Some((symbol, offset + field.offset, field.width)))
    }

    /// Resolves one field of a known struct layout, erroring with the list
    /// of the type's valid fields when it does not exist.
    fn field_of(
        &self,
        base: &Expr,
        layout_ix: usize,
        member: &str,
    ) -> Result<&crate::elab::FieldLayout> {
        let layout = self.types.layout(layout_ix);
        layout.field(member).ok_or_else(|| {
            ElabError::field_error(svparse::pretty::print_expr(base), member, layout)
        })
    }

    /// The struct value an expression denotes: `(symbol, offset, layout)` for
    /// a struct-typed signal or a struct-typed field of one.
    fn struct_value_of(&self, expr: &Expr) -> Result<Option<(String, usize, usize)>> {
        match expr {
            Expr::Ident(name) => Ok(self.signal_types.get(name).map(|&ix| (name.clone(), 0, ix))),
            Expr::Member { base, member } => {
                let Some((symbol, offset, layout_ix)) = self.struct_value_of(base)? else {
                    return Ok(None);
                };
                let field = self.field_of(base, layout_ix, member)?;
                match field.layout {
                    Some(sub) => Ok(Some((symbol, offset + field.offset, sub))),
                    None => Ok(None),
                }
            }
            _ => Ok(None),
        }
    }

    /// Evaluates an SVA expression to a single bit (non-zero test).
    fn expr_bool(&mut self, expr: &Expr) -> Result<Lit> {
        let bits = self.expr_word(expr)?;
        Ok(words::reduce_or(&mut self.aig, &bits))
    }

    /// Evaluates an SVA expression to a word.
    fn expr_word(&mut self, expr: &Expr) -> Result<Vec<Lit>> {
        match expr {
            Expr::Number(n) => {
                let width = n.width.map(|w| w as usize).unwrap_or(32).max(1);
                Ok(words::constant(n.value.unwrap_or(0), width))
            }
            Expr::Ident(name) => {
                if let Some(bits) = self.symbols.get(name) {
                    self.lint.referenced_symbols.insert(name.clone());
                    return Ok(bits.clone());
                }
                if let Some(&value) = self.params.get(name) {
                    return Ok(words::constant(value, 32));
                }
                if let Some((value, width)) = self.types.enum_const_in(Some(&self.top), name) {
                    return Ok(words::constant(value, width.max(1)));
                }
                if self.types.ambiguous_const(name) {
                    return Err(Self::err(format!(
                        "enum member `{name}` is ambiguous: multiple packages export \
                         conflicting values — use a scoped reference (`pkg::{name}`)"
                    )));
                }
                Err(Self::err(format!(
                    "property references unknown signal `{name}`"
                )))
            }
            Expr::Unary { op, operand } => {
                let v = self.expr_word(operand)?;
                Ok(match op {
                    UnaryOp::LogicalNot => {
                        vec![words::reduce_or(&mut self.aig, &v).invert()]
                    }
                    UnaryOp::BitwiseNot => words::not(&v),
                    UnaryOp::ReduceAnd => vec![words::reduce_and(&mut self.aig, &v)],
                    UnaryOp::ReduceOr => vec![words::reduce_or(&mut self.aig, &v)],
                    UnaryOp::ReduceXor => vec![words::reduce_xor(&mut self.aig, &v)],
                    UnaryOp::ReduceNand => vec![words::reduce_and(&mut self.aig, &v).invert()],
                    UnaryOp::ReduceNor => vec![words::reduce_or(&mut self.aig, &v).invert()],
                    UnaryOp::ReduceXnor => vec![words::reduce_xor(&mut self.aig, &v).invert()],
                    UnaryOp::Negate => {
                        let zero = words::constant(0, v.len());
                        words::sub(&mut self.aig, &zero, &v)
                    }
                    UnaryOp::Plus => v,
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.expr_word(lhs)?;
                let b = self.expr_word(rhs)?;
                let aig = &mut self.aig;
                Ok(match op {
                    BinaryOp::Add => words::add(aig, &a, &b),
                    BinaryOp::Sub => words::sub(aig, &a, &b),
                    BinaryOp::Mul => words::mul(aig, &a, &b),
                    BinaryOp::LogicalAnd => {
                        let x = words::reduce_or(aig, &a);
                        let y = words::reduce_or(aig, &b);
                        vec![aig.and(x, y)]
                    }
                    BinaryOp::LogicalOr => {
                        let x = words::reduce_or(aig, &a);
                        let y = words::reduce_or(aig, &b);
                        vec![aig.or(x, y)]
                    }
                    BinaryOp::BitAnd => words::bitwise(aig, &a, &b, |g, x, y| g.and(x, y)),
                    BinaryOp::BitOr => words::bitwise(aig, &a, &b, |g, x, y| g.or(x, y)),
                    BinaryOp::BitXor => words::bitwise(aig, &a, &b, |g, x, y| g.xor(x, y)),
                    BinaryOp::BitXnor => words::bitwise(aig, &a, &b, |g, x, y| g.xnor(x, y)),
                    BinaryOp::Eq | BinaryOp::CaseEq => vec![words::eq(aig, &a, &b)],
                    BinaryOp::Ne | BinaryOp::CaseNe => vec![words::eq(aig, &a, &b).invert()],
                    BinaryOp::Lt => vec![words::ult(aig, &a, &b)],
                    BinaryOp::Le => vec![words::ule(aig, &a, &b)],
                    BinaryOp::Gt => vec![words::ult(aig, &b, &a)],
                    BinaryOp::Ge => vec![words::ule(aig, &b, &a)],
                    BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => {
                        let amount = words::as_constant(&b)
                            .ok_or_else(|| Self::err("shift amount must be constant"))?
                            as usize;
                        if matches!(op, BinaryOp::Shl) {
                            words::shl_const(&a, amount)
                        } else {
                            words::shr_const(&a, amount)
                        }
                    }
                    BinaryOp::Div | BinaryOp::Mod | BinaryOp::Pow => {
                        return Err(Self::err("division in property expressions is unsupported"))
                    }
                })
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let c = self.expr_bool(cond)?;
                let t = self.expr_word(then_expr)?;
                let e = self.expr_word(else_expr)?;
                Ok(words::mux(&mut self.aig, c, &t, &e))
            }
            Expr::Concat(parts) => {
                let mut bits = Vec::new();
                for part in parts.iter().rev() {
                    let mut v = self.expr_word(part)?;
                    bits.append(&mut v);
                }
                Ok(bits)
            }
            Expr::Replicate { count, value } => {
                let n = const_eval(count, &self.params)? as usize;
                let v = self.expr_word(value)?;
                let mut bits = Vec::with_capacity(n * v.len());
                for _ in 0..n {
                    bits.extend_from_slice(&v);
                }
                Ok(bits)
            }
            Expr::Index { base, index } => {
                let base_bits = self.expr_word(base)?;
                if let Ok(idx) = const_eval(index, &self.params) {
                    let idx = idx as usize;
                    return Ok(vec![base_bits.get(idx).copied().unwrap_or(Lit::FALSE)]);
                }
                let index_bits = self.expr_word(index)?;
                let singles: Vec<Vec<Lit>> = base_bits.iter().map(|&b| vec![b]).collect();
                Ok(words::select(&mut self.aig, &singles, &index_bits))
            }
            Expr::RangeSelect { base, msb, lsb } => {
                let base_bits = self.expr_word(base)?;
                let msb = const_eval(msb, &self.params)? as usize;
                let lsb = const_eval(lsb, &self.params)? as usize;
                let (hi, lo) = (msb.max(lsb), msb.min(lsb));
                Ok((lo..=hi)
                    .map(|i| base_bits.get(i).copied().unwrap_or(Lit::FALSE))
                    .collect())
            }
            Expr::Member { base, member } => {
                // Struct-typed design signals resolve through the type
                // table: `port.field` becomes the field's bit slice of the
                // flat signal (nested access walks sub-layouts).
                if let Some((symbol, offset, width)) = self.member_slice(base, member)? {
                    let bits = self
                        .symbols
                        .get(&symbol)
                        .ok_or_else(|| Self::err(format!("unknown signal `{symbol}`")))?;
                    self.lint.referenced_symbols.insert(symbol);
                    return Ok((offset..offset + width)
                        .map(|i| bits.get(i).copied().unwrap_or(Lit::FALSE))
                        .collect());
                }
                // Otherwise fall back to the naming convention: `port.field`
                // matches a flattened `port_field` or literal `port.field`
                // symbol when the design provides one.
                let base_name = base
                    .as_ident()
                    .ok_or_else(|| Self::err("unsupported nested member access"))?;
                for (guessed, candidate) in [
                    (false, format!("{base_name}.{member}")),
                    (true, format!("{base_name}_{member}")),
                ] {
                    if let Some(bits) = self.symbols.get(&candidate) {
                        self.lint.referenced_symbols.insert(candidate.clone());
                        if guessed {
                            // `port_field` is a *naming-convention* guess, not
                            // a declared binding — record it for the lint.
                            self.lint
                                .fallback_bindings
                                .insert(format!("{base_name}.{member}"), candidate);
                        }
                        return Ok(bits.clone());
                    }
                }
                Err(Self::err(format!(
                    "member access `{base_name}.{member}` does not match any design signal"
                )))
            }
            Expr::Call {
                name, is_system, ..
            } => Err(Self::err(format!(
                "calls to `{}{name}` are not supported in property expressions",
                if *is_system { "$" } else { "" }
            ))),
            Expr::Str(_) | Expr::Macro(_) => Err(Self::err(
                "strings/macros are not supported in property expressions",
            )),
        }
    }
}

/// The leftmost identifier (or `base.member` path) inside `expr` — the
/// needle the lint uses to locate annotation-level findings in the source.
fn first_ident(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Ident(n) => Some(n.clone()),
        Expr::Member { base, member } => first_ident(base).map(|b| format!("{b}.{member}")),
        Expr::Unary { operand, .. } => first_ident(operand),
        Expr::Binary { lhs, rhs, .. } => first_ident(lhs).or_else(|| first_ident(rhs)),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => first_ident(cond)
            .or_else(|| first_ident(then_expr))
            .or_else(|| first_ident(else_expr)),
        Expr::Index { base, index } => first_ident(base).or_else(|| first_ident(index)),
        Expr::RangeSelect { base, .. } => first_ident(base),
        Expr::Concat(items) => items.iter().find_map(first_ident),
        Expr::Replicate { value, .. } => first_ident(value),
        Expr::Call { args, .. } => args.iter().find_map(first_ident),
        Expr::Number(_) | Expr::Str(_) | Expr::Macro(_) => None,
    }
}

/// Convenience: counts compiled properties by kind.
pub fn summary(compiled: &CompiledTestbench) -> HashMap<&'static str, usize> {
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    for p in &compiled.properties {
        let key = match p.kind {
            CompiledKind::Safety(_) => "safety",
            CompiledKind::Liveness(_) => "liveness",
            CompiledKind::Cover(_) => "cover",
            CompiledKind::Constraint => "constraint",
            CompiledKind::Fairness => "fairness",
            CompiledKind::Skipped(_) => "skipped",
        };
        *counts.entry(key).or_default() += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::{elaborate, ElabOptions};
    use autosva::sva::PropertyClass;
    use autosva::{generate_ft, AutosvaOptions};

    const ECHO: &str = r#"
/*AUTOSVA
echo_txn: req -in> res
req_val = req_val
req_ack = req_ack
[1:0] req_transid = req_id
res_val = res_val
[1:0] res_transid = res_id
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  input  logic [1:0] req_id,
  output logic res_val,
  output logic [1:0] res_id
);
  logic busy_q;
  logic [1:0] id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q <= 2'b0;
    end else begin
      if (req_val && req_ack) begin
        busy_q <= 1'b1;
        id_q <= req_id;
      end else if (busy_q) begin
        busy_q <= 1'b0;
      end
    end
  end
  assign req_ack = !busy_q;
  assign res_val = busy_q;
  assign res_id = id_q;
endmodule
"#;

    fn compiled() -> CompiledTestbench {
        let ft = generate_ft(ECHO, &AutosvaOptions::default()).unwrap();
        let file = svparse::parse(ECHO).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        compile(&design, &ft).unwrap()
    }

    #[test]
    fn aux_signals_are_elaborated() {
        let c = compiled();
        assert!(c.aux_symbols.contains_key("req_hsk"));
        assert!(c.aux_symbols.contains_key("echo_txn_set"));
        assert!(c.aux_symbols.contains_key("echo_txn_sampled"));
        assert!(c.aux_symbols.contains_key("symb_echo_txn_transid"));
        assert_eq!(c.aux_symbols["echo_txn_sampled"].len(), 4);
        assert_eq!(c.aux_symbols["symb_echo_txn_transid"].len(), 2);
    }

    #[test]
    fn properties_are_partitioned_by_kind() {
        let c = compiled();
        let counts = summary(&c);
        assert!(counts.get("liveness").copied().unwrap_or(0) >= 1);
        assert!(counts.get("safety").copied().unwrap_or(0) >= 1);
        assert_eq!(counts.get("cover").copied().unwrap_or(0), 1);
        assert!(counts.get("skipped").copied().unwrap_or(0) >= 1);
        // The partition is total: every compiled property lands in exactly
        // one summary bucket.
        assert_eq!(counts.values().sum::<usize>(), c.properties.len());
        assert_eq!(c.model.covers.len(), 1);
        assert!(!c.model.liveness.is_empty());
        assert!(!c.model.bads.is_empty());
    }

    #[test]
    fn unknown_signal_reference_fails() {
        let src = r#"
/*AUTOSVA
t: req -in> res
req_val = does_not_exist
res_val = also_missing
*/
module broken (input logic clk_i, input logic rst_ni);
endmodule
"#;
        let ft = generate_ft(src, &AutosvaOptions::default()).unwrap();
        let file = svparse::parse(src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        assert!(compile(&design, &ft).is_err());
    }

    const STRUCT_DUT: &str = r#"
package fu_pkg;
  typedef enum logic [1:0] { FU_NONE, LOAD, STORE } fu_op_t;
  typedef struct packed {
    logic [2:0] trans_id;
    fu_op_t fu;
  } fu_data_t;
endpackage
/*AUTOSVA
fu_load: lsu_req -in> lsu_res
lsu_req_val = lsu_valid_i && fu_data_i.fu == LOAD
[2:0] lsu_req_transid = fu_data_i.trans_id
lsu_res_val = res_val_o
[2:0] lsu_res_transid = res_id_o
*/
module fu_dut (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic lsu_valid_i,
  input  fu_pkg::fu_data_t fu_data_i,
  output logic res_val_o,
  output logic [2:0] res_id_o
);
  logic busy_q;
  logic [2:0] id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q   <= 3'b0;
    end else begin
      if (lsu_valid_i && fu_data_i.fu == LOAD) begin
        busy_q <= 1'b1;
        id_q   <= fu_data_i.trans_id;
      end else begin
        busy_q <= 1'b0;
      end
    end
  end
  assign res_val_o = busy_q;
  assign res_id_o  = id_q;
endmodule
"#;

    #[test]
    fn struct_member_annotations_compile_to_slices() {
        let ft = generate_ft(STRUCT_DUT, &AutosvaOptions::default()).unwrap();
        let file = svparse::parse(STRUCT_DUT).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        let c = compile(&design, &ft).expect("member-access annotations compile");
        assert!(!c.model.bads.is_empty());
        // The sampled request transid is the trans_id slice of the port.
        assert!(c.aux_symbols.contains_key("fu_load_sampled"));
    }

    #[test]
    fn annotation_with_unknown_struct_field_renders_caret_and_valid_fields() {
        // `fu_data_i.op` does not exist (the field is called `fu`): the
        // compile error must carry the field info and render a caret snippet
        // on the annotation line listing the valid fields of `fu_data_t`.
        let src = STRUCT_DUT.replace(
            "lsu_req_val = lsu_valid_i && fu_data_i.fu == LOAD",
            "lsu_req_val = lsu_valid_i && fu_data_i.op == LOAD",
        );
        let ft = generate_ft(&src, &AutosvaOptions::default()).unwrap();
        let file = svparse::parse(&src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        let err = compile(&design, &ft).unwrap_err();
        assert!(err.message.contains("no field `op`"), "{}", err.message);
        let rendered = err.render(&src);
        // Line/column point into the annotation block, the caret underlines
        // the bad field, and the struct's real fields are listed.
        assert!(rendered.contains("fu_data_i.op"), "rendered: {rendered}");
        assert!(rendered.contains("^^"), "rendered: {rendered}");
        assert!(
            rendered.contains("valid fields of `fu_data_t`: trans_id, fu"),
            "rendered: {rendered}"
        );
        // The snippet names the annotation line (line 11 of the source).
        assert!(rendered.starts_with("11:"), "rendered: {rendered}");
    }

    #[test]
    fn xprop_properties_are_skipped() {
        let c = compiled();
        assert!(c
            .properties
            .iter()
            .filter(|p| p.property.class == PropertyClass::Xprop)
            .all(|p| matches!(p.kind, CompiledKind::Skipped(_))));
    }
}
