//! Run-wide interrupt and budget handles for cooperative engine
//! preemption.
//!
//! Every long-running loop in the verification cascade — the CDCL search
//! loop, PDR's obligation queue, the explicit engine's frontier sweep,
//! BMC's depth steps and the fuzzer's rounds — polls a shared
//! [`Interrupt`] handle so a per-property wall-clock deadline, a step
//! budget or the run-wide cancellation flag can stop a solve *inside*
//! the engine rather than between cascade stages.  An interrupted solve
//! surfaces as an explicit `Interrupted` outcome (never as a fake
//! `Sat`/`Unsat`), which the checker maps to
//! [`PropertyStatus::Unknown`] with a note naming the engine that was
//! preempted.
//!
//! The handle is deliberately cheap: a disarmed [`Interrupt`] (the
//! default) is a `None` and both [`Interrupt::poll`] and
//! [`Interrupt::triggered`] cost one branch.  An armed handle reads one
//! relaxed atomic on the fast path; `Instant::now` is only consulted by
//! `poll`, which callers invoke at a coarse cadence (every N conflicts,
//! once per frontier state, once per unrolling depth).
//!
//! Once any source fires, the handle latches: every later `poll` and
//! `triggered` reports the same [`InterruptReason`].  The latch is what
//! keeps downstream verdicts sound — engines check [`Interrupt::triggered`]
//! after a solve before trusting its result, so a solve that raced the
//! deadline can never be misread as a completed proof.
//!
//! [`PropertyStatus::Unknown`]: crate::checker::PropertyStatus::Unknown

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an [`Interrupt`] fired.  Ordered by precedence: once a reason is
/// latched, later sources cannot overwrite it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptReason {
    /// The run-wide cancellation flag was raised (e.g. `stop_on_violation`).
    Cancelled,
    /// The wall-clock deadline passed.
    Timeout,
    /// The step/conflict budget was exhausted.
    Budget,
}

impl InterruptReason {
    fn from_code(code: u8) -> Option<InterruptReason> {
        match code {
            1 => Some(InterruptReason::Cancelled),
            2 => Some(InterruptReason::Timeout),
            3 => Some(InterruptReason::Budget),
            _ => None,
        }
    }

    fn code(self) -> u8 {
        match self {
            InterruptReason::Cancelled => 1,
            InterruptReason::Timeout => 2,
            InterruptReason::Budget => 3,
        }
    }
}

#[derive(Debug)]
struct Inner {
    /// Wall-clock point past which `poll` fires `Timeout`.
    deadline: Option<Instant>,
    /// Remaining step budget; `u64::MAX` means unbounded.  Saturates at
    /// zero, at which point `charge` fires `Budget`.
    budget: AtomicU64,
    /// Shared cancellation flag, observed by `poll`.
    cancel: Option<Arc<AtomicBool>>,
    /// Sticky latch: 0 = live, else an `InterruptReason` code.
    fired: AtomicU8,
}

impl Inner {
    /// Latches `reason` if nothing fired yet; returns the reason that is
    /// latched after the call (first writer wins).
    fn latch(&self, reason: InterruptReason) -> InterruptReason {
        match self
            .fired
            .compare_exchange(0, reason.code(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => reason,
            Err(prev) => InterruptReason::from_code(prev).unwrap_or(reason),
        }
    }
}

/// Shared, cloneable interrupt handle.  The default handle is disarmed
/// and never fires; [`Interrupt::new`] arms any combination of a
/// deadline, a step budget and a cancellation flag.
#[derive(Debug, Clone, Default)]
pub struct Interrupt {
    inner: Option<Arc<Inner>>,
}

impl Interrupt {
    /// A handle that never fires.  Polling it is a single branch.
    pub fn none() -> Interrupt {
        Interrupt::default()
    }

    /// Arms a handle.  `deadline` is an absolute wall-clock point,
    /// `budget` a number of abstract steps (SAT conflicts, PDR queries,
    /// explicit states...), `cancel` the run-wide cancellation flag.
    /// Passing `None` for all three still produces an armed handle that
    /// only fires via [`Interrupt::fire`] (fault injection uses this).
    pub fn new(
        deadline: Option<Instant>,
        budget: Option<u64>,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Interrupt {
        Interrupt {
            inner: Some(Arc::new(Inner {
                deadline,
                budget: AtomicU64::new(budget.unwrap_or(u64::MAX)),
                cancel,
                fired: AtomicU8::new(0),
            })),
        }
    }

    /// Convenience: a handle with a deadline `timeout` from now, plus an
    /// optional cancellation flag.
    pub fn with_timeout(timeout: Duration, cancel: Option<Arc<AtomicBool>>) -> Interrupt {
        Interrupt::new(Instant::now().checked_add(timeout), None, cancel)
    }

    /// Whether this handle can ever fire.  Engines may skip poll
    /// plumbing entirely when it cannot.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Checks every source — the sticky latch, the cancellation flag and
    /// the deadline — and returns the latched reason if any fired.  Call
    /// this at a coarse cadence (it reads the clock).
    pub fn poll(&self) -> Option<InterruptReason> {
        let inner = self.inner.as_deref()?;
        if let Some(reason) = InterruptReason::from_code(inner.fired.load(Ordering::Relaxed)) {
            return Some(reason);
        }
        if let Some(cancel) = &inner.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Some(inner.latch(InterruptReason::Cancelled));
            }
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Some(inner.latch(InterruptReason::Timeout));
            }
        }
        None
    }

    /// Deducts `steps` from the budget and fires `Budget` on
    /// exhaustion.  Does not read the clock; combine with [`poll`] at
    /// the same call site when a deadline is also armed.
    ///
    /// [`poll`]: Interrupt::poll
    pub fn charge(&self, steps: u64) -> Option<InterruptReason> {
        let inner = self.inner.as_deref()?;
        if let Some(reason) = InterruptReason::from_code(inner.fired.load(Ordering::Relaxed)) {
            return Some(reason);
        }
        if inner.budget.load(Ordering::Relaxed) == u64::MAX {
            return None; // unbounded sentinel: never decremented
        }
        let before = inner.budget.fetch_sub(steps, Ordering::Relaxed);
        if before <= steps {
            // The subtraction may have wrapped, but the latch below is
            // what every later call observes, so the wrapped value is
            // never misread as a fresh budget.
            return Some(inner.latch(InterruptReason::Budget));
        }
        None
    }

    /// The wall-clock deadline this handle enforces, if any.  Lets a
    /// parent handle arm child handles (the portfolio race's per-turn
    /// quanta) that keep respecting the parent's deadline.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_deref()?.deadline
    }

    /// The shared cancellation flag this handle observes, if any (see
    /// [`Interrupt::deadline`] — child handles re-arm it so a run-wide
    /// cancellation preempts them too).
    pub fn cancel_handle(&self) -> Option<Arc<AtomicBool>> {
        self.inner.as_deref()?.cancel.clone()
    }

    /// The sticky latch alone: cheap enough for per-result checks.
    /// Engines consult this *after* a solve before trusting its verdict,
    /// so an interrupted solve can never be misread as conclusive.
    pub fn triggered(&self) -> Option<InterruptReason> {
        let inner = self.inner.as_deref()?;
        InterruptReason::from_code(inner.fired.load(Ordering::Relaxed))
    }

    /// Latches `reason` directly.  Fault injection uses this to force a
    /// deterministic "timeout" without waiting on the wall clock.
    pub fn fire(&self, reason: InterruptReason) {
        if let Some(inner) = self.inner.as_deref() {
            inner.latch(reason);
        }
    }
}

thread_local! {
    /// The property task the current thread is executing: its name, its
    /// interrupt handle, and the engine stage it is in.  Set by the
    /// checker at task entry and at each cascade stage; read by the
    /// fault-injection harness (site filters, forced timeouts) and by
    /// the panic handler (to attribute a caught panic to an engine).
    static TASK_CONTEXT: RefCell<Option<TaskContext>> = const { RefCell::new(None) };
}

/// Thread-local description of the property task currently running.
#[derive(Debug, Clone)]
pub struct TaskContext {
    /// Property name (e.g. `as__handshake_valid`).
    pub property: String,
    /// Interrupt handle the engines on this thread are polling.
    pub interrupt: Interrupt,
    /// Engine tag for the current cascade stage (`"fuzz"`, `"bmc"`,
    /// `"pdr"`, `"explicit"`, or `"task"` outside any engine).
    pub engine: &'static str,
}

/// Installs the task context for this thread.  Deliberately *not* a
/// drop-restoring guard: a panic must leave the context in place so the
/// `catch_unwind` handler can still read which engine was running.
pub fn set_task_context(property: &str, interrupt: Interrupt) {
    TASK_CONTEXT.with(|slot| {
        *slot.borrow_mut() = Some(TaskContext {
            property: property.to_string(),
            interrupt,
            engine: "task",
        });
    });
}

/// Clears the task context (call after the task — including its panic
/// handler — has finished with it).
pub fn clear_task_context() {
    TASK_CONTEXT.with(|slot| {
        *slot.borrow_mut() = None;
    });
}

/// Tags the current cascade stage.  Set-only for the same reason as
/// [`set_task_context`]: an unwind must not erase the tag before the
/// panic handler reads it.
pub fn set_current_engine(engine: &'static str) {
    TASK_CONTEXT.with(|slot| {
        if let Some(ctx) = slot.borrow_mut().as_mut() {
            ctx.engine = engine;
        }
    });
}

/// The engine tag of the current thread's task, or `"task"` when no
/// context is installed.
pub fn current_engine() -> &'static str {
    TASK_CONTEXT.with(|slot| slot.borrow().as_ref().map(|c| c.engine).unwrap_or("task"))
}

/// A clone of the current thread's task context, if any.
pub fn current_task() -> Option<TaskContext> {
    TASK_CONTEXT.with(|slot| slot.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_handle_never_fires() {
        let i = Interrupt::none();
        assert!(!i.is_armed());
        assert_eq!(i.poll(), None);
        assert_eq!(i.charge(1_000_000), None);
        assert_eq!(i.triggered(), None);
        i.fire(InterruptReason::Timeout);
        assert_eq!(i.triggered(), None, "firing a disarmed handle is a no-op");
    }

    #[test]
    fn deadline_fires_and_latches() {
        let i = Interrupt::new(Some(Instant::now()), None, None);
        assert_eq!(i.poll(), Some(InterruptReason::Timeout));
        assert_eq!(i.triggered(), Some(InterruptReason::Timeout));
        // A later budget exhaustion cannot overwrite the latch.
        assert_eq!(i.charge(u64::MAX / 4), Some(InterruptReason::Timeout));
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let i = Interrupt::with_timeout(Duration::from_secs(3600), None);
        assert_eq!(i.poll(), None);
        assert_eq!(i.triggered(), None);
    }

    #[test]
    fn budget_fires_after_exhaustion() {
        let i = Interrupt::new(None, Some(10), None);
        assert_eq!(i.charge(4), None);
        assert_eq!(i.charge(4), None);
        assert_eq!(i.charge(4), Some(InterruptReason::Budget));
        assert_eq!(i.triggered(), Some(InterruptReason::Budget));
        assert_eq!(i.poll(), Some(InterruptReason::Budget));
    }

    #[test]
    fn cancel_flag_is_observed_by_poll() {
        let cancel = Arc::new(AtomicBool::new(false));
        let i = Interrupt::new(None, None, Some(cancel.clone()));
        assert_eq!(i.poll(), None);
        cancel.store(true, Ordering::Relaxed);
        assert_eq!(i.poll(), Some(InterruptReason::Cancelled));
        assert_eq!(i.triggered(), Some(InterruptReason::Cancelled));
    }

    #[test]
    fn clones_share_the_latch() {
        let a = Interrupt::new(None, None, None);
        let b = a.clone();
        a.fire(InterruptReason::Budget);
        assert_eq!(b.triggered(), Some(InterruptReason::Budget));
    }

    #[test]
    fn task_context_tracks_engine_tags() {
        set_task_context("as__probe", Interrupt::none());
        assert_eq!(current_engine(), "task");
        set_current_engine("pdr");
        assert_eq!(current_engine(), "pdr");
        let ctx = current_task().expect("context installed");
        assert_eq!(ctx.property, "as__probe");
        clear_task_context();
        assert_eq!(current_engine(), "task");
        assert!(current_task().is_none());
    }
}
