//! Per-property cone-of-influence reduction with content fingerprinting.
//!
//! AutoSVA's leverage is fan-out: one annotation line expands into many
//! properties, but each property usually *observes* only a fraction of the
//! compiled model — a response-integrity check never reads the free-running
//! statistics counter sitting next to it, and one transaction's monitors are
//! blind to another transaction's auxiliary state.  Every engine of the
//! cascade nevertheless pays for the full latch set on every property.
//!
//! This module slices the model per property: starting from the property's
//! root literals (plus every invariant constraint, which can prune paths of
//! any latch it mentions, and — for liveness — every fairness assumption),
//! it walks the transitive fanin through AND gates and latch next-state
//! functions, then rebuilds a self-contained [`Model`] containing exactly
//! the reachable nodes.  Slicing is verdict-preserving:
//!
//! * **safety / cover** — the sliced circuit computes bit-identical values
//!   for every cone signal on every input sequence, so a bad/cover literal
//!   is reachable in the slice iff it is reachable in the full model;
//! * **liveness** — a fair counterexample lasso of the slice extends to a
//!   full-model lasso (the non-cone latches are a deterministic finite
//!   system driven by free inputs: under the lasso's periodic cone inputs
//!   they eventually enter a periodic orbit, and the product of the two
//!   periods closes a genuine full-state loop on which the cone signals —
//!   hence the pending obligation and every fairness witness — repeat), and
//!   conversely a full-model lasso projects onto the cone.
//!
//! Each slice carries a stable content [`Fingerprint`] over its entire
//! functional description (structure, initial values, names, property
//! literals).  Identical cones — across buggy/fixed design variants,
//! repeated bench iterations, or properties generated from the same
//! annotation — hash identically, which is what the proof cache
//! ([`crate::portfolio::ProofCache`]) keys on.
//!
//! Downstream of the slice, the orchestrator runs the AIG optimization pass
//! ([`crate::opt`]) — structural hashing, sequential constant sweeping,
//! dead-node elimination — before handing the model to the engines.  The
//! raw slice fingerprint dedups that work (content-identical slices are
//! optimized once); the *optimized* model's own fingerprint is what the
//! proof cache then keys on, since that is the model the engines and the
//! hit-validation replay actually see.

use crate::aig::{Aig, Lit, Node};
use crate::model::Model;
use crate::unroll::SeedHint;
use std::collections::HashMap;
use std::fmt;

/// Which property of a [`Model`] a slice is built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceTarget {
    /// Slice for `model.bads[i]`; the slice holds it as `bads[0]`.
    Bad(usize),
    /// Slice for `model.covers[i]`; the slice holds it as `covers[0]`.
    Cover(usize),
    /// Slice for `model.liveness[i]` (kept as `liveness[0]`) together with
    /// every fairness assumption, which liveness checking depends on.
    Liveness(usize),
}

/// A per-property slice: the reduced model plus its content fingerprint.
#[derive(Debug, Clone)]
pub struct Slice {
    /// The self-contained sliced model (the target property at index 0).
    pub model: Model,
    /// Stable content hash of everything in `model`.
    pub fingerprint: Fingerprint,
}

/// A 128-bit content hash of a sliced model, stable across processes and
/// runs (pure FNV-1a over the model's canonical description — no pointer or
/// allocation order leaks in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64, pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// Incremental FNV-1a in two 64-bit lanes with distinct offset bases, giving
/// a 128-bit digest without external dependencies.
struct Fnv2 {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Fnv2 {
    fn new() -> Self {
        Fnv2 {
            a: 0xCBF2_9CE4_8422_2325,
            // Second lane: the standard offset basis xored with a fixed
            // constant so the lanes decorrelate from the first byte on.
            b: 0xCBF2_9CE4_8422_2325 ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn byte(&mut self, x: u8) {
        self.a = (self.a ^ u64::from(x)).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ u64::from(x.rotate_left(3))).wrapping_mul(FNV_PRIME);
    }

    fn u32(&mut self, x: u32) {
        for byte in x.to_le_bytes() {
            self.byte(byte);
        }
    }

    fn usize(&mut self, x: usize) {
        self.u32(x as u32);
        self.u32((x as u64 >> 32) as u32);
    }

    fn lit(&mut self, l: Lit) {
        self.u32(l.raw());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        for byte in s.bytes() {
            self.byte(byte);
        }
    }

    fn finish(&self) -> Fingerprint {
        Fingerprint(self.a, self.b)
    }
}

/// Computes the stable content fingerprint of a model (used directly for
/// un-sliced models, and by [`cone_of_influence`] for slices).
pub fn fingerprint(model: &Model) -> Fingerprint {
    let mut h = Fnv2::new();
    let aig = &model.aig;
    h.usize(aig.num_nodes());
    for idx in 0..aig.num_nodes() {
        match aig.node(idx) {
            Node::False => h.byte(0),
            Node::Input => h.byte(1),
            Node::Latch => h.byte(2),
            Node::And(a, b) => {
                h.byte(3);
                h.lit(a);
                h.lit(b);
            }
        }
        h.str(aig.name_of(idx).unwrap_or(""));
    }
    h.usize(aig.num_inputs());
    for &node in aig.inputs() {
        h.usize(node);
    }
    h.usize(aig.num_latches());
    for latch in aig.latches() {
        h.usize(latch.node);
        h.byte(u8::from(latch.init));
        h.lit(latch.next);
    }
    h.usize(model.bads.len());
    for bad in &model.bads {
        h.str(&bad.name);
        h.lit(bad.lit);
    }
    h.usize(model.covers.len());
    for cover in &model.covers {
        h.str(&cover.name);
        h.lit(cover.lit);
    }
    h.usize(model.constraints.len());
    for &c in &model.constraints {
        h.lit(c);
    }
    h.usize(model.liveness.len());
    for p in &model.liveness {
        h.str(&p.name);
        h.lit(p.trigger);
        h.lit(p.target);
    }
    h.usize(model.fairness.len());
    for p in &model.fairness {
        h.str(&p.name);
        h.lit(p.trigger);
        h.lit(p.target);
    }
    h.finish()
}

/// Hashes one signal name with the first FNV-1a lane (stable across
/// processes; used by [`state_signature`]).
fn name_hash(name: &str) -> u64 {
    let mut h = Fnv2::new();
    h.str(name);
    h.finish().0
}

/// The sorted, deduplicated set of name hashes of a model's state
/// elements (latches and inputs).
///
/// Cross-property learning compares these signatures: two cones that
/// share most of their state elements are verifying overlapping logic,
/// so the later task seeds its solvers from the earlier cone (phase and
/// VSIDS-activity hints on the shared elements) instead of starting
/// cold.  The signature depends only on the slice's structure — never on
/// runtime solver state — so the seed plan is identical for sequential
/// and parallel runs at any thread count.
pub fn state_signature(model: &Model) -> Vec<u64> {
    let aig = &model.aig;
    let mut sig: Vec<u64> = (0..aig.num_inputs())
        .map(|i| name_hash(aig.input_name(i)))
        .chain(
            aig.latches()
                .iter()
                .map(|l| name_hash(aig.name_of(l.node).unwrap_or("latch"))),
        )
        .collect();
    sig.sort_unstable();
    sig.dedup();
    sig
}

/// Phase/activity seed hints for `model`'s latches whose names appear in
/// `donor`, a sibling cone's [`state_signature`].  The phase is the
/// latch's own reset value (starting the shared state machine from reset
/// is the donor cone's most productive search region too) and a fixed
/// activity boost steers VSIDS toward the shared logic first.  Purely
/// structural — byte-identical plans for any thread count — and purely
/// heuristic for the receiving solver: seeds steer decisions, never the
/// clause database, so they cannot change a verdict.
pub fn seed_hints_from(model: &Model, donor: &[u64]) -> HashMap<usize, SeedHint> {
    let aig = &model.aig;
    aig.latches()
        .iter()
        .filter(|l| {
            donor
                .binary_search(&name_hash(aig.name_of(l.node).unwrap_or("latch")))
                .is_ok()
        })
        .map(|l| {
            (
                l.node,
                SeedHint {
                    phase: l.init,
                    boost: 2.0,
                },
            )
        })
        .collect()
}

/// Jaccard overlap of two [`state_signature`]s in `[0, 1]`:
/// `|a ∩ b| / |a ∪ b|`.  Both inputs must be sorted and deduplicated
/// (as `state_signature` returns them).  Two empty signatures overlap
/// fully (both cones are pure-combinational over constants).
pub fn signature_overlap(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut shared = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - shared;
    shared as f64 / union as f64
}

/// Builds the cone-of-influence slice of `model` for one property.
///
/// The slice keeps every node in the transitive fanin of the property's
/// literals, all invariant constraints (a constraint over *any* latch can
/// make full-model paths infeasible, so dropping one would be unsound), and
/// — for liveness targets — every fairness assumption.  Latch initial
/// values, input/latch/gate names and creation order are preserved, so
/// traces and invariant renderings read identically to the full model.
///
/// # Panics
///
/// Panics if the target index is out of range for `model`.
pub fn cone_of_influence(model: &Model, target: SliceTarget) -> Slice {
    let target_name = match target {
        SliceTarget::Bad(i) => &model.bads[i].name,
        SliceTarget::Cover(i) => &model.covers[i].name,
        SliceTarget::Liveness(i) => &model.liveness[i].name,
    };
    let _span = crate::telemetry::span("slice", target_name);
    let aig = &model.aig;

    // ------------------------------------------------------------------
    // Roots.
    // ------------------------------------------------------------------
    let mut roots: Vec<Lit> = Vec::new();
    match target {
        SliceTarget::Bad(i) => roots.push(model.bads[i].lit),
        SliceTarget::Cover(i) => roots.push(model.covers[i].lit),
        SliceTarget::Liveness(i) => {
            roots.push(model.liveness[i].trigger);
            roots.push(model.liveness[i].target);
            for f in &model.fairness {
                roots.push(f.trigger);
                roots.push(f.target);
            }
        }
    }
    roots.extend_from_slice(&model.constraints);

    // ------------------------------------------------------------------
    // Transitive fanin (latches pull in their next-state functions).
    // ------------------------------------------------------------------
    let next_of: HashMap<usize, Lit> = aig.latches().iter().map(|l| (l.node, l.next)).collect();
    let mut in_cone = vec![false; aig.num_nodes()];
    in_cone[0] = true; // the constant node always exists
    let mut worklist: Vec<usize> = roots.iter().map(|l| l.node()).collect();
    while let Some(node) = worklist.pop() {
        if in_cone[node] {
            continue;
        }
        in_cone[node] = true;
        match aig.node(node) {
            Node::False | Node::Input => {}
            Node::Latch => worklist.push(next_of[&node].node()),
            Node::And(a, b) => {
                worklist.push(a.node());
                worklist.push(b.node());
            }
        }
    }

    // ------------------------------------------------------------------
    // Rebuild, in original node order (deterministic indices).
    // ------------------------------------------------------------------
    let mut sliced = Aig::new();
    let mut map: HashMap<usize, Lit> = HashMap::new();
    map.insert(0, Lit::FALSE);
    let map_lit =
        |map: &HashMap<usize, Lit>, l: Lit| -> Lit { map[&l.node()].invert_if(l.is_inverted()) };
    let input_name_of: HashMap<usize, &str> = aig
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &node)| (node, aig.input_name(i)))
        .collect();
    for idx in 1..aig.num_nodes() {
        if !in_cone[idx] {
            continue;
        }
        let new_lit = match aig.node(idx) {
            Node::False => unreachable!("only node 0 is the constant"),
            Node::Input => sliced.add_input(input_name_of[&idx]),
            Node::Latch => {
                let latch = aig
                    .latches()
                    .iter()
                    .find(|l| l.node == idx)
                    .expect("cone latch exists");
                sliced.add_latch(aig.name_of(idx).unwrap_or("latch"), latch.init)
            }
            Node::And(a, b) => {
                let lit = {
                    let (na, nb) = (map_lit(&map, a), map_lit(&map, b));
                    sliced.and(na, nb)
                };
                if let Some(name) = aig.name_of(idx) {
                    if !lit.is_const() {
                        sliced.set_name(lit, name);
                    }
                }
                lit
            }
        };
        map.insert(idx, new_lit);
    }
    for latch in aig.latches() {
        if in_cone[latch.node] {
            let new_latch = map[&latch.node];
            let new_next = map_lit(&map, latch.next);
            sliced.set_latch_next(new_latch, new_next);
        }
    }

    // ------------------------------------------------------------------
    // Sliced model.
    // ------------------------------------------------------------------
    let mut out = Model::new(sliced);
    out.constraints = model
        .constraints
        .iter()
        .map(|&c| map_lit(&map, c))
        .collect();
    match target {
        SliceTarget::Bad(i) => {
            let bad = &model.bads[i];
            out.bads.push(crate::model::BadProperty {
                name: bad.name.clone(),
                lit: map_lit(&map, bad.lit),
            });
        }
        SliceTarget::Cover(i) => {
            let cover = &model.covers[i];
            out.covers.push(crate::model::CoverProperty {
                name: cover.name.clone(),
                lit: map_lit(&map, cover.lit),
            });
        }
        SliceTarget::Liveness(i) => {
            let p = &model.liveness[i];
            out.liveness.push(crate::model::ResponseProperty {
                name: p.name.clone(),
                trigger: map_lit(&map, p.trigger),
                target: map_lit(&map, p.target),
            });
            out.fairness = model
                .fairness
                .iter()
                .map(|f| crate::model::ResponseProperty {
                    name: f.name.clone(),
                    trigger: map_lit(&map, f.trigger),
                    target: map_lit(&map, f.target),
                })
                .collect();
        }
    }
    let fingerprint = fingerprint(&out);
    Slice {
        model: out,
        fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BadProperty, ResponseProperty};

    /// Two independent subsystems in one AIG: a request/busy bit driven by
    /// input `req`, and a free-running 3-bit counter the property never
    /// observes.
    fn two_subsystems() -> (Model, Lit) {
        let mut aig = Aig::new();
        let req = aig.add_input("req");
        let busy = aig.add_latch("busy", false);
        let next_busy = aig.or(busy, req);
        aig.set_latch_next(busy, next_busy);
        // Unrelated counter.
        let c0 = aig.add_latch("c0", false);
        let c1 = aig.add_latch("c1", false);
        let c2 = aig.add_latch("c2", false);
        let n0 = aig.not(c0);
        let n1 = aig.xor(c1, c0);
        let carry = aig.and(c0, c1);
        let n2 = aig.xor(c2, carry);
        aig.set_latch_next(c0, n0);
        aig.set_latch_next(c1, n1);
        aig.set_latch_next(c2, n2);
        let mut model = Model::new(aig);
        model.bads.push(BadProperty {
            name: "busy_without_req".into(),
            lit: busy,
        });
        (model, req)
    }

    #[test]
    fn slice_drops_unobserved_latches() {
        let (model, _) = two_subsystems();
        assert_eq!(model.aig.num_latches(), 4);
        let slice = cone_of_influence(&model, SliceTarget::Bad(0));
        assert_eq!(slice.model.aig.num_latches(), 1);
        assert_eq!(slice.model.bads.len(), 1);
        assert_eq!(slice.model.bads[0].name, "busy_without_req");
        // The surviving latch keeps its name.
        let latch = slice.model.aig.latches()[0];
        assert_eq!(slice.model.aig.name_of(latch.node), Some("busy"));
    }

    #[test]
    fn constraints_anchor_their_cone() {
        let (mut model, _) = two_subsystems();
        // A constraint over the unrelated counter forces it into the cone:
        // an infeasible constraint can cut *all* paths, so it must be kept.
        let c2 = Lit::new(model.aig.latches()[3].node, false);
        model.constraints.push(c2.invert());
        let slice = cone_of_influence(&model, SliceTarget::Bad(0));
        assert_eq!(slice.model.aig.num_latches(), 4);
        assert_eq!(slice.model.constraints.len(), 1);
    }

    #[test]
    fn identical_cones_fingerprint_identically() {
        let (model_a, _) = two_subsystems();
        let (model_b, _) = two_subsystems();
        let fa = cone_of_influence(&model_a, SliceTarget::Bad(0)).fingerprint;
        let fb = cone_of_influence(&model_b, SliceTarget::Bad(0)).fingerprint;
        assert_eq!(fa, fb);
    }

    #[test]
    fn different_init_values_fingerprint_differently() {
        let build = |init: bool| {
            let mut aig = Aig::new();
            let req = aig.add_input("req");
            let busy = aig.add_latch("busy", init);
            let next_busy = aig.or(busy, req);
            aig.set_latch_next(busy, next_busy);
            let mut model = Model::new(aig);
            model.bads.push(BadProperty {
                name: "busy_without_req".into(),
                lit: busy,
            });
            model
        };
        let fa = cone_of_influence(&build(false), SliceTarget::Bad(0)).fingerprint;
        let fb = cone_of_influence(&build(true), SliceTarget::Bad(0)).fingerprint;
        assert_ne!(fa, fb);
    }

    #[test]
    fn liveness_slice_keeps_fairness_cones() {
        let mut aig = Aig::new();
        let req = aig.add_input("req");
        let gnt = aig.add_input("gnt");
        let busy = aig.add_latch("busy", false);
        let raised = aig.or(busy, req);
        let next = aig.and(raised, gnt.invert());
        aig.set_latch_next(busy, next);
        // Unrelated latch.
        let junk = aig.add_latch("junk", false);
        aig.set_latch_next(junk, junk.invert());
        // A latch observed only through the fairness assumption.
        let fair_state = aig.add_latch("fair_state", false);
        aig.set_latch_next(fair_state, gnt);
        let mut model = Model::new(aig);
        model.liveness.push(ResponseProperty {
            name: "busy_clears".into(),
            trigger: busy,
            target: busy.invert(),
        });
        model.fairness.push(ResponseProperty {
            name: "gnt_fair".into(),
            trigger: fair_state,
            target: gnt,
        });
        let slice = cone_of_influence(&model, SliceTarget::Liveness(0));
        // `junk` is gone, `fair_state` stays (fairness root).
        assert_eq!(slice.model.aig.num_latches(), 2);
        assert_eq!(slice.model.liveness.len(), 1);
        assert_eq!(slice.model.fairness.len(), 1);
        let names: Vec<&str> = slice
            .model
            .aig
            .latches()
            .iter()
            .filter_map(|l| slice.model.aig.name_of(l.node))
            .collect();
        assert!(names.contains(&"busy"));
        assert!(names.contains(&"fair_state"));
    }

    #[test]
    fn slice_of_full_cone_is_the_whole_model() {
        // When the property observes everything, the slice is the model.
        let mut aig = Aig::new();
        let a = aig.add_latch("a", false);
        let b = aig.add_latch("b", true);
        aig.set_latch_next(a, b);
        aig.set_latch_next(b, a);
        let bad = aig.and(a, b);
        let mut model = Model::new(aig);
        model.bads.push(BadProperty {
            name: "both".into(),
            lit: bad,
        });
        let slice = cone_of_influence(&model, SliceTarget::Bad(0));
        assert_eq!(slice.model.aig.num_latches(), 2);
        assert_eq!(slice.model.aig.num_ands(), model.aig.num_ands());
    }

    #[test]
    fn signature_overlap_scores_shared_state() {
        let (model, _) = two_subsystems();
        let full = state_signature(&model);
        let busy_cone = state_signature(&cone_of_influence(&model, SliceTarget::Bad(0)).model);
        // The busy cone holds `req` + `busy`, the full model those plus
        // the 3 counter latches: overlap 2 / 5.
        assert_eq!(busy_cone.len(), 2);
        assert!((signature_overlap(&busy_cone, &full) - 0.4).abs() < 1e-9);
        // Identity and symmetry.
        assert_eq!(signature_overlap(&full, &full), 1.0);
        assert_eq!(
            signature_overlap(&busy_cone, &full),
            signature_overlap(&full, &busy_cone)
        );
        // Disjoint signatures score zero; empty ones score one.
        assert_eq!(signature_overlap(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(signature_overlap(&[], &[]), 1.0);
        assert_eq!(signature_overlap(&[], &[1]), 0.0);
    }

    #[test]
    fn constant_target_slices_to_the_empty_cone() {
        let (model, _) = two_subsystems();
        let mut model = model;
        model.bads[0].lit = Lit::FALSE;
        let slice = cone_of_influence(&model, SliceTarget::Bad(0));
        assert_eq!(slice.model.aig.num_latches(), 0);
        assert_eq!(slice.model.bads[0].lit, Lit::FALSE);
    }
}
