//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! The solver is written from scratch for this reproduction: the bounded
//! model checker produces CNF instances in the tens of thousands of clauses
//! for the evaluated designs, which a watched-literal CDCL solver with
//! activity-based decisions handles comfortably.
//!
//! Features: two-watched-literal propagation, first-UIP conflict analysis
//! with clause learning, VSIDS-style variable activities with decay,
//! non-chronological backtracking, and incremental solving under assumptions.

use std::fmt;

/// A propositional variable, numbered from 0.
pub type Var = usize;

/// A literal: a variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatLit(u32);

impl SatLit {
    /// Creates a literal for `var` with the given polarity (`true` =
    /// positive).
    pub fn new(var: Var, positive: bool) -> SatLit {
        SatLit((var as u32) << 1 | u32::from(!positive))
    }

    /// Creates the positive literal of `var`.
    pub fn pos(var: Var) -> SatLit {
        SatLit::new(var, true)
    }

    /// Creates the negative literal of `var`.
    pub fn neg(var: Var) -> SatLit {
        SatLit::new(var, false)
    }

    /// The variable of this literal.
    pub fn var(self) -> Var {
        (self.0 >> 1) as usize
    }

    /// `true` if the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> SatLit {
        SatLit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var() + 1)
        } else {
            write!(f, "-{}", self.var() + 1)
        }
    }
}

/// Result of a satisfiability query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment exists (retrieve it with
    /// [`Solver::value`]).
    Sat,
    /// No satisfying assignment exists under the given assumptions.
    Unsat,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assign {
    Unassigned,
    True,
    False,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<SatLit>,
    /// Retained for clause-database statistics and future clause deletion.
    #[allow(dead_code)]
    learnt: bool,
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use autosva_formal::sat::{SatLit, SatResult, Solver};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// solver.add_clause(&[SatLit::pos(a), SatLit::pos(b)]);
/// solver.add_clause(&[SatLit::neg(a)]);
/// assert_eq!(solver.solve(&[]), SatResult::Sat);
/// assert_eq!(solver.value(b), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// watches[lit.index()] = clause indices watching that literal.
    watches: Vec<Vec<usize>>,
    assigns: Vec<Assign>,
    /// Decision level at which each variable was assigned.
    levels: Vec<usize>,
    /// Clause that implied each variable (by index), usize::MAX for decisions.
    reasons: Vec<usize>,
    /// Assignment trail.
    trail: Vec<SatLit>,
    /// Index into the trail where each decision level starts.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    /// VSIDS activities.
    activity: Vec<f64>,
    act_inc: f64,
    /// Saved phases for phase saving.
    phase: Vec<bool>,
    /// Lazy max-activity heap of decision candidates (entries may be stale).
    order: std::collections::BinaryHeap<OrderEntry>,
    /// Scratch buffer for conflict analysis (indexed by variable).
    seen: Vec<bool>,
    /// Set to true when the clause database is unsatisfiable at level 0.
    unsat: bool,
    /// After an `Unsat` answer: the subset of the assumption literals that
    /// sufficed for unsatisfiability (the *final conflict*).
    core: Vec<SatLit>,
    /// Statistics: number of conflicts seen.
    pub conflicts: u64,
    /// Statistics: number of decisions made.
    pub decisions: u64,
    /// Statistics: number of literal propagations.
    pub propagations: u64,
}

const NO_REASON: usize = usize::MAX;

/// A (possibly stale) decision-order entry: variables with higher recorded
/// activity are popped first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderEntry {
    activity: f64,
    var: Var,
}

impl Eq for OrderEntry {}

impl PartialOrd for OrderEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.activity
            .partial_cmp(&other.activity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| self.var.cmp(&other.var))
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            act_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses (original plus learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        self.assigns.push(Assign::Unassigned);
        self.levels.push(0);
        self.reasons.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.seen.push(false);
        self.order.push(OrderEntry {
            activity: 0.0,
            var: v,
        });
        v
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Adding an empty clause, or a clause that is falsified at decision
    /// level 0, makes the instance permanently unsatisfiable.  Adding a
    /// clause after a satisfiable query invalidates the previous model (the
    /// solver returns to decision level 0 first).
    pub fn add_clause(&mut self, lits: &[SatLit]) {
        if self.unsat {
            return;
        }
        if !self.trail_lim.is_empty() {
            self.backtrack(0);
        }
        // Simplify: remove duplicates and satisfied/false literals at level 0.
        let mut simplified: Vec<SatLit> = Vec::with_capacity(lits.len());
        for &lit in lits {
            match self.lit_value(lit) {
                Some(true) => return, // already satisfied
                Some(false) => continue,
                None => {
                    if simplified.contains(&lit.negate()) {
                        return; // tautology
                    }
                    if !simplified.contains(&lit) {
                        simplified.push(lit);
                    }
                }
            }
        }
        match simplified.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(simplified[0], NO_REASON) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watch(simplified[0], idx);
                self.watch(simplified[1], idx);
                self.clauses.push(Clause {
                    lits: simplified,
                    learnt: false,
                });
            }
        }
    }

    fn watch(&mut self, lit: SatLit, clause: usize) {
        self.watches[lit.index()].push(clause);
    }

    fn lit_value(&self, lit: SatLit) -> Option<bool> {
        match self.assigns[lit.var()] {
            Assign::Unassigned => None,
            Assign::True => Some(lit.is_positive()),
            Assign::False => Some(!lit.is_positive()),
        }
    }

    /// The model value of `var` after a [`SatResult::Sat`] answer.
    ///
    /// Returns `None` if the variable was irrelevant (never assigned).
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.assigns[var] {
            Assign::Unassigned => None,
            Assign::True => Some(true),
            Assign::False => Some(false),
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn enqueue(&mut self, lit: SatLit, reason: usize) -> bool {
        match self.lit_value(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = lit.var();
                self.assigns[v] = if lit.is_positive() {
                    Assign::True
                } else {
                    Assign::False
                };
                self.levels[v] = self.decision_level();
                self.reasons[v] = reason;
                self.phase[v] = lit.is_positive();
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation.  Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let falsified = lit.negate();
            let mut watchers = std::mem::take(&mut self.watches[falsified.index()]);
            let mut i = 0;
            while i < watchers.len() {
                let ci = watchers[i];
                // Ensure the falsified literal is in position 1.
                let (w0, w1) = {
                    let c = &mut self.clauses[ci];
                    if c.lits[0] == falsified {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits[1])
                };
                debug_assert_eq!(w1, falsified);
                // If the other watched literal is true, the clause is satisfied.
                if self.lit_value(w0) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let cand = self.clauses[ci].lits[k];
                    if self.lit_value(cand) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[cand.index()].push(ci);
                        watchers.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                if !self.enqueue(w0, ci) {
                    // Conflict: restore remaining watchers and report.
                    self.watches[falsified.index()].append(&mut watchers);
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[falsified.index()] = watchers;
        }
        None
    }

    fn bump_activity(&mut self, var: Var) {
        self.activity[var] += self.act_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
        self.order.push(OrderEntry {
            activity: self.activity[var],
            var,
        });
    }

    fn decay_activities(&mut self) {
        self.act_inc /= 0.95;
    }

    /// First-UIP conflict analysis.  Returns the learnt clause and the level
    /// to backtrack to.
    fn analyze(&mut self, conflict: usize) -> (Vec<SatLit>, usize) {
        let mut learnt: Vec<SatLit> = vec![SatLit::pos(0)]; // placeholder for the asserting literal
        let mut touched: Vec<Var> = Vec::new();
        let mut counter = 0usize;
        let mut lit_opt: Option<SatLit> = None;
        let mut clause_idx = conflict;
        let mut trail_pos = self.trail.len();
        let current_level = self.decision_level();

        loop {
            let start = if lit_opt.is_none() { 0 } else { 1 };
            let lits: Vec<SatLit> = self.clauses[clause_idx].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !self.seen[v] && self.levels[v] > 0 {
                    self.seen[v] = true;
                    touched.push(v);
                    self.bump_activity(v);
                    if self.levels[v] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                trail_pos -= 1;
                let lit = self.trail[trail_pos];
                if self.seen[lit.var()] {
                    lit_opt = Some(lit);
                    break;
                }
            }
            let p = lit_opt.expect("resolution literal");
            counter -= 1;
            self.seen[p.var()] = false;
            if counter == 0 {
                learnt[0] = p.negate();
                break;
            }
            clause_idx = self.reasons[p.var()];
            debug_assert_ne!(clause_idx, NO_REASON);
        }
        for v in touched {
            self.seen[v] = false;
        }

        // Backtrack level: second-highest level in the learnt clause.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var()] > self.levels[learnt[max_i].var()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.levels[learnt[1].var()]
        };
        (learnt, backtrack_level)
    }

    /// MiniSat-style `analyzeFinal`: starting from the literals of a
    /// falsified clause (or a failed assumption), walks the implication
    /// graph back to the assumption decisions that entail the conflict.
    ///
    /// Must run before backtracking, while levels/reasons/trail are intact.
    /// Returns the subset of the assumption literals responsible.
    fn analyze_final(&mut self, seeds: &[SatLit]) -> Vec<SatLit> {
        let mut core = Vec::new();
        if self.decision_level() == 0 {
            return core;
        }
        let mut touched: Vec<Var> = Vec::new();
        for &lit in seeds {
            let v = lit.var();
            if self.levels[v] > 0 && !self.seen[v] {
                self.seen[v] = true;
                touched.push(v);
            }
        }
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            if !self.seen[v] {
                continue;
            }
            let reason = self.reasons[v];
            if reason == NO_REASON {
                // A decision below the assumption prefix: by construction
                // every decision reached here is an assumption literal.
                core.push(lit);
            } else {
                // Mark the antecedents (the implied literal itself is `v`,
                // which is already seen, so marking the whole clause is
                // safe regardless of watched-literal reordering).
                for j in 0..self.clauses[reason].lits.len() {
                    let q = self.clauses[reason].lits[j];
                    let qv = q.var();
                    if qv != v && self.levels[qv] > 0 && !self.seen[qv] {
                        self.seen[qv] = true;
                        touched.push(qv);
                    }
                }
            }
        }
        for v in touched {
            self.seen[v] = false;
        }
        core
    }

    fn backtrack(&mut self, level: usize) {
        while self.decision_level() > level {
            let start = self.trail_lim.pop().expect("trail limit");
            while self.trail.len() > start {
                let lit = self.trail.pop().expect("trail entry");
                let v = lit.var();
                self.assigns[v] = Assign::Unassigned;
                self.reasons[v] = NO_REASON;
                self.order.push(OrderEntry {
                    activity: self.activity[v],
                    var: v,
                });
            }
        }
        self.qhead = self.trail.len().min(self.qhead);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        // Pop (possibly stale) entries until an unassigned variable surfaces.
        while let Some(entry) = self.order.pop() {
            if self.assigns[entry.var] == Assign::Unassigned {
                return Some(entry.var);
            }
        }
        // The heap can run dry because popped entries are not re-inserted on
        // every path; fall back to a linear scan.
        (0..self.num_vars).find(|&v| self.assigns[v] == Assign::Unassigned)
    }

    /// Garbage-collects the clause database at decision level 0.
    ///
    /// Removes every clause satisfied at level 0 — which is how clauses
    /// guarded by a *retired* activation literal (the PDR pattern: assert
    /// the negated activation as a unit) and stale learnt clauses leave the
    /// database for good — and deletes level-0-falsified literals from the
    /// clauses that remain, rebuilding the watch lists from scratch.
    ///
    /// Semantically a no-op: unit propagation already treats satisfied
    /// clauses and false literals as inert; this reclaims the memory and
    /// the watch-list traversal cost.  Returns `(clauses_removed,
    /// literals_removed)`.
    pub fn simplify(&mut self) -> (usize, usize) {
        if self.unsat {
            return (0, 0);
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return (0, 0);
        }
        let old_clauses = std::mem::take(&mut self.clauses);
        for watch_list in &mut self.watches {
            watch_list.clear();
        }
        // Reasons of level-0 assignments may point at clause indices that
        // are about to be compacted away; level-0 literals are never
        // resolved on, so the references can simply be dropped.
        for i in 0..self.trail.len() {
            self.reasons[self.trail[i].var()] = NO_REASON;
        }
        let mut removed_clauses = 0;
        let mut removed_lits = 0;
        'clauses: for mut clause in old_clauses {
            let mut i = 0;
            while i < clause.lits.len() {
                match self.lit_value(clause.lits[i]) {
                    Some(true) => {
                        removed_clauses += 1;
                        continue 'clauses;
                    }
                    Some(false) => {
                        clause.lits.swap_remove(i);
                        removed_lits += 1;
                    }
                    None => i += 1,
                }
            }
            // After a conflict-free level-0 propagation every surviving
            // clause has at least two unassigned literals; handle the
            // shorter shapes defensively anyway.
            match clause.lits.len() {
                0 => {
                    self.unsat = true;
                    return (removed_clauses, removed_lits);
                }
                1 => {
                    removed_clauses += 1;
                    if !self.enqueue(clause.lits[0], NO_REASON) {
                        self.unsat = true;
                        return (removed_clauses, removed_lits);
                    }
                }
                _ => {
                    let idx = self.clauses.len();
                    self.watch(clause.lits[0], idx);
                    self.watch(clause.lits[1], idx);
                    self.clauses.push(clause);
                }
            }
        }
        if self.propagate().is_some() {
            self.unsat = true;
        }
        (removed_clauses, removed_lits)
    }

    /// After an [`SatResult::Unsat`] answer from [`Solver::solve`], the
    /// subset of the assumption literals that sufficed for the conflict (the
    /// *final conflict*).  Empty when the clause database is unsatisfiable
    /// on its own.  This is the core primitive behind activation-literal
    /// based incremental solving: the PDR engine assumes a cube literal per
    /// latch and reads back which of them an UNSAT answer actually used.
    pub fn unsat_core(&self) -> &[SatLit] {
        &self.core
    }

    /// Solves the instance under the given assumptions.
    ///
    /// Assumption literals are forced true for this query only; the clause
    /// database and learnt clauses persist between calls, enabling
    /// incremental use by the bounded model checker and the PDR engine.  On
    /// an [`SatResult::Unsat`] answer, [`Solver::unsat_core`] reports which
    /// assumptions the conflict depended on.
    pub fn solve(&mut self, assumptions: &[SatLit]) -> SatResult {
        self.core.clear();
        if self.unsat {
            return SatResult::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }

        loop {
            // (Re-)apply assumptions at successive decision levels.
            while self.decision_level() < assumptions.len() {
                let a = assumptions[self.decision_level()];
                match self.lit_value(a) {
                    Some(true) => {
                        // Already satisfied: open an empty decision level so
                        // indexing stays aligned.
                        self.trail_lim.push(self.trail.len());
                    }
                    Some(false) => {
                        // The assumption is falsified by earlier assumptions
                        // (and the clause database): the core is `a` plus
                        // whatever forced its negation.
                        self.core = self.analyze_final(&[a]);
                        if !self.core.contains(&a) {
                            self.core.push(a);
                        }
                        self.backtrack(0);
                        return SatResult::Unsat;
                    }
                    None => {
                        self.trail_lim.push(self.trail.len());
                        self.decisions += 1;
                        let ok = self.enqueue(a, NO_REASON);
                        debug_assert!(ok);
                    }
                }
                if let Some(conflict) = self.propagate() {
                    let seeds = self.clauses[conflict].lits.clone();
                    self.core = self.analyze_final(&seeds);
                    self.backtrack(0);
                    return SatResult::Unsat;
                }
            }

            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                if self.decision_level() <= assumptions.len() {
                    // Conflict that depends only on assumptions (or level 0).
                    let seeds = self.clauses[conflict].lits.clone();
                    self.core = self.analyze_final(&seeds);
                    self.backtrack(0);
                    if self.decision_level() == 0 && assumptions.is_empty() {
                        self.unsat = true;
                    }
                    return SatResult::Unsat;
                }
                let (learnt, level) = self.analyze(conflict);
                self.backtrack(level);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    // Unit learnt clause: assert at level 0 so it persists;
                    // assumptions are re-applied by the outer loop.
                    self.backtrack(0);
                    if !self.enqueue(asserting, NO_REASON) {
                        // The implied unit contradicts level 0: the clause
                        // database itself is unsatisfiable.
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                    if self.propagate().is_some() {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                } else {
                    let idx = self.clauses.len();
                    self.watch(learnt[0], idx);
                    self.watch(learnt[1], idx);
                    self.clauses.push(Clause {
                        lits: learnt,
                        learnt: true,
                    });
                    if !self.enqueue(asserting, idx) {
                        self.backtrack(0);
                        return SatResult::Unsat;
                    }
                }
                self.decay_activities();
            } else {
                match self.pick_branch_var() {
                    None => return SatResult::Sat,
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = SatLit::new(v, self.phase[v]);
                        let ok = self.enqueue(lit, NO_REASON);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_encoding() {
        let a = SatLit::pos(3);
        assert_eq!(a.var(), 3);
        assert!(a.is_positive());
        assert!(!a.negate().is_positive());
        assert_eq!(a.negate().negate(), a);
        assert_eq!(a.to_string(), "4");
        assert_eq!(a.negate().to_string(), "-4");
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[SatLit::pos(a)]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[SatLit::pos(a)]);
        s.add_clause(&[SatLit::neg(a)]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        s.add_clause(&[]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn implication_chain() {
        // a -> b -> c -> d, with a forced true: all must be true.
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(&[SatLit::neg(w[0]), SatLit::pos(w[1])]);
        }
        s.add_clause(&[SatLit::pos(vars[0])]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        for &v in &vars {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: unsatisfiable.  Exercises conflict analysis.
        let mut s = Solver::new();
        // p[i][j] = pigeon i in hole j
        let p: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        // Every pigeon in some hole.
        for row in &p {
            s.add_clause(&[SatLit::pos(row[0]), SatLit::pos(row[1])]);
        }
        // No two pigeons share a hole.
        for hole in 0..2 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in p.iter().skip(i1 + 1) {
                    s.add_clause(&[SatLit::neg(row1[hole]), SatLit::neg(row2[hole])]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn solving_under_assumptions_is_incremental() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[SatLit::pos(a), SatLit::pos(b)]);
        // Assuming !a forces b.
        assert_eq!(s.solve(&[SatLit::neg(a)]), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
        // Assuming !a and !b is unsat.
        assert_eq!(s.solve(&[SatLit::neg(a), SatLit::neg(b)]), SatResult::Unsat);
        // The solver remains usable afterwards.
        assert_eq!(s.solve(&[SatLit::pos(a)]), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn unsat_core_is_a_subset_of_the_assumptions() {
        // (a | b), (!a | c), (!b | c): assuming !c and a is unsat, and the
        // core must not mention the irrelevant assumption d.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let d = s.new_var();
        s.add_clause(&[SatLit::pos(a), SatLit::pos(b)]);
        s.add_clause(&[SatLit::neg(a), SatLit::pos(c)]);
        s.add_clause(&[SatLit::neg(b), SatLit::pos(c)]);
        let assumptions = [SatLit::pos(d), SatLit::neg(c), SatLit::pos(a)];
        assert_eq!(s.solve(&assumptions), SatResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(!core.is_empty());
        for l in &core {
            assert!(assumptions.contains(l), "core literal {l} not assumed");
        }
        assert!(
            !core.contains(&SatLit::pos(d)),
            "irrelevant literal in core"
        );
        // The core itself must be unsatisfiable.
        assert_eq!(s.solve(&core), SatResult::Unsat);
        // The solver stays usable and Sat answers clear the core.
        assert_eq!(s.solve(&[SatLit::pos(c)]), SatResult::Sat);
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn unsat_core_of_directly_conflicting_assumptions() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[SatLit::pos(a), SatLit::pos(b)]);
        assert_eq!(s.solve(&[SatLit::pos(a), SatLit::neg(a)]), SatResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&SatLit::pos(a)));
        assert!(core.contains(&SatLit::neg(a)));
    }

    #[test]
    fn unsat_core_empty_when_database_is_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[SatLit::pos(a)]);
        s.add_clause(&[SatLit::neg(a)]);
        assert_eq!(s.solve(&[SatLit::pos(b)]), SatResult::Unsat);
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn activation_literals_retire_clauses() {
        // The PDR usage pattern: a clause guarded by an activation literal
        // participates only while the activation is assumed, and is retired
        // for good by asserting the negated activation as a unit.
        let mut s = Solver::new();
        let act = s.new_var();
        let x = s.new_var();
        s.add_clause(&[SatLit::neg(act), SatLit::pos(x)]);
        assert_eq!(
            s.solve(&[SatLit::pos(act), SatLit::neg(x)]),
            SatResult::Unsat
        );
        assert_eq!(s.solve(&[SatLit::neg(x)]), SatResult::Sat);
        s.add_clause(&[SatLit::neg(act)]);
        assert_eq!(s.solve(&[SatLit::neg(x)]), SatResult::Sat);
    }

    #[test]
    fn random_cores_are_unsat_subsets() {
        // Random instances solved under random assumptions: every Unsat
        // answer must yield a core that is (a) a subset of the assumptions
        // and (b) itself unsatisfiable.
        let mut seed: u64 = 0xDEADBEEF;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut unsat_seen = 0;
        for _ in 0..60 {
            let num_vars = 8;
            let mut s = Solver::new();
            for _ in 0..num_vars {
                s.new_var();
            }
            for _ in 0..20 {
                let clause: Vec<SatLit> = (0..3)
                    .map(|_| SatLit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                    .collect();
                s.add_clause(&clause);
            }
            let mut assumptions: Vec<SatLit> = (0..4)
                .map(|_| SatLit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                .collect();
            assumptions.dedup_by_key(|l| l.var());
            if s.solve(&assumptions) == SatResult::Unsat {
                unsat_seen += 1;
                let core = s.unsat_core().to_vec();
                for l in &core {
                    assert!(assumptions.contains(l));
                }
                assert_eq!(s.solve(&core), SatResult::Unsat, "core not unsat");
            }
        }
        assert!(unsat_seen > 0, "test never exercised the Unsat path");
    }

    #[test]
    fn simplify_removes_retired_activation_clauses() {
        let mut s = Solver::new();
        let act = s.new_var();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause(&[SatLit::neg(act), SatLit::pos(x)]);
        s.add_clause(&[SatLit::neg(act), SatLit::pos(y)]);
        s.add_clause(&[SatLit::pos(x), SatLit::pos(y)]);
        assert_eq!(s.num_clauses(), 3);
        // Retire the activation literal for good (the PDR pattern).
        s.add_clause(&[SatLit::neg(act)]);
        let (clauses_removed, _) = s.simplify();
        assert_eq!(clauses_removed, 2);
        assert_eq!(s.num_clauses(), 1);
        // The retired clauses no longer constrain x and y.
        assert_eq!(s.solve(&[SatLit::neg(x)]), SatResult::Sat);
        assert_eq!(s.value(y), Some(true));
    }

    #[test]
    fn simplify_strips_false_literals() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[SatLit::pos(a), SatLit::pos(b), SatLit::pos(c)]);
        s.add_clause(&[SatLit::neg(a)]);
        let (clauses_removed, lits_removed) = s.simplify();
        assert_eq!(clauses_removed, 0);
        assert_eq!(lits_removed, 1);
        // The shrunk clause (b | c) still constrains correctly.
        assert_eq!(s.solve(&[SatLit::neg(b)]), SatResult::Sat);
        assert_eq!(s.value(c), Some(true));
        assert_eq!(s.solve(&[SatLit::neg(b), SatLit::neg(c)]), SatResult::Unsat);
    }

    #[test]
    fn simplify_preserves_answers_on_random_instances() {
        // Interleaving simplify() with solving must never change a verdict:
        // build the same instance into a plain solver and a simplified one
        // and compare under identical assumptions.
        let mut seed: u64 = 0xC0FFEE;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..40 {
            let num_vars = 8;
            let clauses: Vec<Vec<SatLit>> = (0..24)
                .map(|_| {
                    (0..3)
                        .map(|_| SatLit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                        .collect()
                })
                .collect();
            let mut plain = Solver::new();
            let mut gc = Solver::new();
            for _ in 0..num_vars {
                plain.new_var();
                gc.new_var();
            }
            for (i, clause) in clauses.iter().enumerate() {
                plain.add_clause(clause);
                gc.add_clause(clause);
                if i == clauses.len() / 2 {
                    // Mid-build solve generates learnt clauses to collect.
                    let _ = gc.solve(&[]);
                    gc.simplify();
                }
            }
            gc.simplify();
            let assumptions: Vec<SatLit> = (0..3)
                .map(|_| SatLit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                .collect();
            assert_eq!(
                plain.solve(&assumptions),
                gc.solve(&assumptions),
                "simplify changed the verdict on {clauses:?} under {assumptions:?}"
            );
        }
    }

    #[test]
    fn xor_chain_satisfiable() {
        // Tseitin-encoded xor chain: x1 ^ x2 ^ x3 = 1.
        let mut s = Solver::new();
        let x1 = s.new_var();
        let x2 = s.new_var();
        let x3 = s.new_var();
        let t = s.new_var(); // t = x1 ^ x2
                             // t <-> x1 xor x2
        s.add_clause(&[SatLit::neg(t), SatLit::pos(x1), SatLit::pos(x2)]);
        s.add_clause(&[SatLit::neg(t), SatLit::neg(x1), SatLit::neg(x2)]);
        s.add_clause(&[SatLit::pos(t), SatLit::neg(x1), SatLit::pos(x2)]);
        s.add_clause(&[SatLit::pos(t), SatLit::pos(x1), SatLit::neg(x2)]);
        // t xor x3 = 1  ->  t != x3
        s.add_clause(&[SatLit::pos(t), SatLit::pos(x3)]);
        s.add_clause(&[SatLit::neg(t), SatLit::neg(x3)]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        let v1 = s.value(x1).unwrap();
        let v2 = s.value(x2).unwrap();
        let v3 = s.value(x3).unwrap();
        assert!(v1 ^ v2 ^ v3);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[SatLit::pos(a), SatLit::pos(a), SatLit::pos(b)]);
        s.add_clause(&[SatLit::pos(a), SatLit::neg(a)]); // tautology: ignored
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn random_3sat_instances_agree_with_brute_force() {
        // Small random instances cross-checked against exhaustive enumeration.
        let mut seed: u64 = 0x12345678;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let num_vars = 6;
            let num_clauses = 18;
            let clauses: Vec<Vec<SatLit>> = (0..num_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = (next() % num_vars as u64) as usize;
                            SatLit::new(v, next() % 2 == 0)
                        })
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            'outer: for bits in 0..(1u32 << num_vars) {
                for clause in &clauses {
                    let ok = clause.iter().any(|l| {
                        let val = (bits >> l.var()) & 1 == 1;
                        if l.is_positive() {
                            val
                        } else {
                            !val
                        }
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            for _ in 0..num_vars {
                s.new_var();
            }
            for clause in &clauses {
                s.add_clause(clause);
            }
            let result = s.solve(&[]);
            assert_eq!(
                result == SatResult::Sat,
                brute_sat,
                "solver disagrees with brute force on {clauses:?}"
            );
            if result == SatResult::Sat {
                // Verify the model actually satisfies every clause.
                for clause in &clauses {
                    assert!(clause.iter().any(|l| {
                        let val = s.value(l.var()).unwrap_or(false);
                        if l.is_positive() {
                            val
                        } else {
                            !val
                        }
                    }));
                }
            }
        }
    }
}
