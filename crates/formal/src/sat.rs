//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! The solver is written from scratch for this reproduction: the bounded
//! model checker produces CNF instances in the tens of thousands of clauses
//! for the evaluated designs, which a watched-literal CDCL solver with
//! activity-based decisions handles comfortably.
//!
//! Features: two-watched-literal propagation, first-UIP conflict analysis
//! with clause learning, recursive learnt-clause minimization, VSIDS
//! variable activities on an indexed binary max-heap, phase saving,
//! Luby-sequence restarts, glue (LBD) tracking with periodic learnt-clause
//! database reduction, non-chronological backtracking, and incremental
//! solving under assumptions with final-conflict unsat cores.
//!
//! The search-loop features can be toggled individually through
//! [`SolverConfig`] (used by the differential test-suite and the solver
//! ablation bench); [`SolverStats`] exposes the counters that let the
//! verification report attribute runtime to solver work.
//!
//! For portfolio solving, solvers working on the *same* CNF encoding can be
//! connected to a shared [`ClausePool`]: each solver exports its learnt
//! clauses with glue (LBD) at or below the pool's bound and imports the
//! siblings' exports at decision level 0 (query entry and restarts).
//! Imported clauses are logical consequences of the shared clause database,
//! so they can only ever prune search — never change a verdict.

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A propositional variable, numbered from 0.
pub type Var = usize;

/// A literal: a variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatLit(u32);

impl SatLit {
    /// Creates a literal for `var` with the given polarity (`true` =
    /// positive).
    pub fn new(var: Var, positive: bool) -> SatLit {
        SatLit((var as u32) << 1 | u32::from(!positive))
    }

    /// Creates the positive literal of `var`.
    pub fn pos(var: Var) -> SatLit {
        SatLit::new(var, true)
    }

    /// Creates the negative literal of `var`.
    pub fn neg(var: Var) -> SatLit {
        SatLit::new(var, false)
    }

    /// The variable of this literal.
    pub fn var(self) -> Var {
        (self.0 >> 1) as usize
    }

    /// `true` if the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> SatLit {
        SatLit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var() + 1)
        } else {
            write!(f, "-{}", self.var() + 1)
        }
    }
}

/// Result of a satisfiability query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment exists (retrieve it with
    /// [`Solver::value`]).
    Sat,
    /// No satisfying assignment exists under the given assumptions.
    Unsat,
    /// The search was preempted by the solver's [`Interrupt`] handle
    /// (deadline, step budget or cancellation) before reaching an
    /// answer.  The solver state stays valid — a later `solve` call may
    /// still conclude — but callers must never treat this as either
    /// verdict.
    ///
    /// [`Interrupt`]: crate::interrupt::Interrupt
    Interrupted,
}

/// Toggles for the modern search-loop techniques.
///
/// All features default to on; the differential tests and the solver
/// ablation bench flip them individually to show that every configuration
/// reaches the same verdicts (and what each feature contributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Luby-sequence restarts (phases are saved, so restarts are cheap).
    pub restarts: bool,
    /// Recursive learnt-clause minimization after first-UIP analysis.
    pub minimize: bool,
    /// Periodic glue/activity-guided learnt-clause database reduction.
    pub reduce: bool,
    /// Base restart interval in conflicts (scaled by the Luby sequence).
    pub restart_base: u32,
    /// Live learnt-clause count that triggers the first `reduce_db` pass
    /// (the ceiling then grows geometrically).
    pub reduce_base: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            restarts: true,
            minimize: true,
            reduce: true,
            restart_base: 100,
            reduce_base: 2000,
        }
    }
}

impl SolverConfig {
    /// The MiniSat-era baseline: clause learning and VSIDS only, none of
    /// the modern search-loop features.
    pub fn baseline() -> Self {
        SolverConfig {
            restarts: false,
            minimize: false,
            reduce: false,
            ..SolverConfig::default()
        }
    }
}

/// Search-loop counters, cumulative over the lifetime of a [`Solver`].
///
/// Aggregated across engine stages by the checker so the verification
/// report can attribute per-property runtime to solver work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts seen.
    pub conflicts: u64,
    /// Decisions made (including assumption levels).
    pub decisions: u64,
    /// Literal propagations.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses recorded.
    pub learnt: u64,
    /// Learnt clauses surviving `reduce_db` passes (cumulative over passes).
    pub learnt_kept: u64,
    /// Learnt clauses evicted by `reduce_db`.
    pub learnt_deleted: u64,
    /// Literals removed from learnt clauses by recursive minimization.
    pub minimized_lits: u64,
    /// `reduce_db` passes run.
    pub reductions: u64,
}

impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, o: SolverStats) {
        self.conflicts += o.conflicts;
        self.decisions += o.decisions;
        self.propagations += o.propagations;
        self.restarts += o.restarts;
        self.learnt += o.learnt;
        self.learnt_kept += o.learnt_kept;
        self.learnt_deleted += o.learnt_deleted;
        self.minimized_lits += o.minimized_lits;
        self.reductions += o.reductions;
    }
}

impl std::ops::Add for SolverStats {
    type Output = SolverStats;
    fn add(mut self, o: SolverStats) -> SolverStats {
        self += o;
        self
    }
}

/// A clause recorded in a [`ClausePool`], tagged with the participant that
/// published it so it is never re-imported by its own exporter.
#[derive(Debug, Clone)]
struct PoolClause {
    lits: Vec<SatLit>,
    lbd: u32,
    owner: usize,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// Published clauses in arrival order (participants read with a cursor,
    /// so the vector is append-only).
    clauses: Vec<PoolClause>,
    /// Dedup index: the sorted literal multiset of every pooled clause.
    seen: HashSet<Vec<SatLit>>,
    /// Number of registered participants (used only to hand out ids).
    participants: usize,
}

/// A thread-safe pool of learnt clauses shared between the solvers of a
/// portfolio race.
///
/// The pool is literal-level: it assumes every participant numbers its
/// variables identically, so it must only ever connect solvers built from
/// the *same* CNF encoding (the checker keys pools by COI fingerprint and
/// identical unrolling order).  Exports are filtered by the glue bound and
/// deduplicated on the sorted literal set; imports skip the reader's own
/// clauses via the `owner` tag.  The clause list sits behind a single
/// mutex held only for short append/scan critical sections; the traffic
/// counters are lock-free atomics.
#[derive(Debug)]
pub struct ClausePool {
    inner: Mutex<PoolInner>,
    glue_bound: u32,
    exported: AtomicU64,
    imported: AtomicU64,
    filtered: AtomicU64,
}

impl ClausePool {
    /// Creates an empty pool accepting clauses with LBD ≤ `glue_bound`.
    pub fn new(glue_bound: u32) -> ClausePool {
        ClausePool {
            inner: Mutex::new(PoolInner::default()),
            glue_bound,
            exported: AtomicU64::new(0),
            imported: AtomicU64::new(0),
            filtered: AtomicU64::new(0),
        }
    }

    /// Registers a participant and returns its id (solvers call this via
    /// [`Solver::attach_pool`]).
    pub fn register(&self) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.participants += 1;
        inner.participants - 1
    }

    /// Offers a learnt clause to the pool.  Clauses above the glue bound
    /// and duplicates of already-pooled clauses are filtered out.
    pub fn publish(&self, owner: usize, lits: &[SatLit], lbd: u32) {
        if lits.is_empty() || lbd > self.glue_bound {
            self.filtered.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut key = lits.to_vec();
        key.sort_unstable();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if !inner.seen.insert(key) {
            drop(inner);
            self.filtered.fetch_add(1, Ordering::Relaxed);
            return;
        }
        inner.clauses.push(PoolClause {
            lits: lits.to_vec(),
            lbd,
            owner,
        });
        drop(inner);
        self.exported.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the clauses published since `cursor` by participants other
    /// than `reader`, advancing the cursor past everything scanned.
    fn fetch(&self, reader: usize, cursor: &mut usize) -> Vec<(Vec<SatLit>, u32)> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let batch = inner.clauses[*cursor..]
            .iter()
            .filter(|c| c.owner != reader)
            .map(|c| (c.lits.clone(), c.lbd))
            .collect();
        *cursor = inner.clauses.len();
        batch
    }

    fn note_imports(&self, n: u64) {
        if n > 0 {
            self.imported.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Clauses accepted into the pool.
    pub fn exported(&self) -> u64 {
        self.exported.load(Ordering::Relaxed)
    }

    /// Clauses attached by importers (each import of one clause by one
    /// participant counts once).
    pub fn imported(&self) -> u64 {
        self.imported.load(Ordering::Relaxed)
    }

    /// Offered clauses rejected by the glue bound or as duplicates.
    pub fn filtered(&self) -> u64 {
        self.filtered.load(Ordering::Relaxed)
    }

    /// A copy of every pooled clause with its LBD, in publication order
    /// (diagnostics and the implication spot-checks of the differential
    /// tests).
    pub fn snapshot(&self) -> Vec<(Vec<SatLit>, u32)> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .clauses
            .iter()
            .map(|c| (c.lits.clone(), c.lbd))
            .collect()
    }

    /// Number of clauses currently pooled.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.clauses.len()
    }

    /// `true` when no clause has been pooled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A solver's connection to a [`ClausePool`]: the shared pool, this
/// solver's participant id, and the read cursor into the pool's clause
/// list.
#[derive(Debug, Clone)]
struct PoolHandle {
    pool: Arc<ClausePool>,
    id: usize,
    cursor: usize,
    /// Fetched clauses referencing variables this solver has not
    /// allocated yet, retried at the next import point (an importer that
    /// joined an already-warm pool grows into the pooled clauses as its
    /// unrolling deepens).
    pending: Vec<(Vec<SatLit>, u32)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assign {
    Unassigned,
    True,
    False,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<SatLit>,
    learnt: bool,
    /// Literal-block distance ("glue"): distinct decision levels in the
    /// clause at learn time.  Low-glue clauses are kept forever.
    lbd: u32,
    /// Clause activity (bumped when the clause resolves a conflict).
    act: f64,
}

/// An indexed binary max-heap over variables, keyed by activity.
///
/// `pos[v]` is the heap slot of `v` (or `NOT_IN_HEAP`), so membership tests
/// and re-heapify-on-bump are O(1)/O(log n) — replacing the previous lazy
/// `BinaryHeap` of stale entries and its O(n) fallback scan.
#[derive(Debug, Clone, Default)]
struct VarHeap {
    heap: Vec<Var>,
    pos: Vec<usize>,
}

const NOT_IN_HEAP: usize = usize::MAX;

impl VarHeap {
    fn grow(&mut self) {
        self.pos.push(NOT_IN_HEAP);
    }

    fn contains(&self, v: Var) -> bool {
        self.pos[v] != NOT_IN_HEAP
    }

    /// Max-heap order: higher activity first, ties broken toward the lower
    /// variable index (a total order, so runs are deterministic).
    fn less(a: Var, b: Var, act: &[f64]) -> bool {
        act[a] < act[b] || (act[a] == act[b] && a > b)
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i]] = i;
        self.pos[self.heap[j]] = j;
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::less(self.heap[parent], self.heap[i], act) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < self.heap.len() && Self::less(self.heap[largest], self.heap[l], act) {
                largest = l;
            }
            if r < self.heap.len() && Self::less(self.heap[largest], self.heap[r], act) {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    /// Restores heap order after `v`'s activity increased.
    fn bumped(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            self.sift_up(self.pos[v], act);
        }
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        self.pos[top] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use autosva_formal::sat::{SatLit, SatResult, Solver};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// solver.add_clause(&[SatLit::pos(a), SatLit::pos(b)]);
/// solver.add_clause(&[SatLit::neg(a)]);
/// assert_eq!(solver.solve(&[]), SatResult::Sat);
/// assert_eq!(solver.value(b), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// watches[lit.index()] = clause indices watching that literal.
    watches: Vec<Vec<usize>>,
    assigns: Vec<Assign>,
    /// Decision level at which each variable was assigned.
    levels: Vec<usize>,
    /// Clause that implied each variable (by index), usize::MAX for decisions.
    reasons: Vec<usize>,
    /// Assignment trail.
    trail: Vec<SatLit>,
    /// Index into the trail where each decision level starts.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    /// VSIDS activities.
    activity: Vec<f64>,
    act_inc: f64,
    /// Clause-activity increment (for learnt-clause reduction ranking).
    cla_inc: f64,
    /// Saved phases for phase saving.
    phase: Vec<bool>,
    /// Indexed max-activity heap of decision candidates.
    order: VarHeap,
    /// Scratch: conflict-analysis marks (indexed by variable).
    seen: Vec<bool>,
    /// Scratch: variables whose `seen` mark must be cleared after analysis.
    analyze_toclear: Vec<Var>,
    /// Scratch: DFS stack of the recursive clause minimization.
    min_stack: Vec<Var>,
    /// Scratch: per-decision-level stamps for LBD computation.
    lbd_stamp: Vec<u64>,
    lbd_counter: u64,
    /// Live learnt-clause count (maintained across learning and rebuilds).
    num_learnts: usize,
    /// Learnt-clause ceiling for the next `reduce_db` (0 = not yet set).
    max_learnts: usize,
    /// Restart bookkeeping: position in the Luby sequence and the conflict
    /// count at which the next restart fires.
    restart_seq: u64,
    restart_next: u64,
    /// Set to true when the clause database is unsatisfiable at level 0.
    unsat: bool,
    /// After an `Unsat` answer: the subset of the assumption literals that
    /// sufficed for unsatisfiability (the *final conflict*).
    core: Vec<SatLit>,
    /// Search-loop feature toggles.
    pub config: SolverConfig,
    /// Cumulative search counters.
    pub stats: SolverStats,
    /// Cooperative preemption handle, polled every
    /// [`INTERRUPT_POLL_INTERVAL`] search-loop iterations.  Disarmed by
    /// default (one branch per poll site).
    interrupt: crate::interrupt::Interrupt,
    /// Conflicts already charged against the interrupt's step budget.
    /// The search loop charges at its poll cadence; [`Solver::solve`]
    /// charges the remainder on exit, so the counter equals
    /// `stats.conflicts` at every query boundary and nothing is ever
    /// charged twice.
    conflicts_charged: u64,
    /// Shared learnt-clause pool of a portfolio race (`None` outside one).
    pool: Option<PoolHandle>,
}

const NO_REASON: usize = usize::MAX;

/// Search-loop iterations between interrupt polls.  Power of two so the
/// cadence check is a mask; coarse enough that the `Instant::now` in
/// `Interrupt::poll` is amortized to noise, fine enough that a 50 ms
/// deadline preempts a solve within a small multiple of itself.
const INTERRUPT_POLL_INTERVAL: u64 = 1024;

/// Propagations between interrupt polls.  The iteration cadence alone lets
/// propagation-heavy, conflict-light instances run long stretches between
/// polls (one iteration may propagate an arbitrarily long trail), which is
/// how a solve could historically overshoot its deadline well past the
/// documented small multiple; counting propagations bounds the work
/// between polls regardless of the conflict rate.
const PROPAGATION_POLL_INTERVAL: u64 = 1 << 14;

impl Solver {
    /// Creates an empty solver with the default configuration.
    pub fn new() -> Self {
        Solver {
            act_inc: 1.0,
            cla_inc: 1.0,
            config: SolverConfig::default(),
            ..Solver::default()
        }
    }

    /// Creates an empty solver with the given feature configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            ..Solver::new()
        }
    }

    /// Installs the cooperative preemption handle.  The search loop
    /// polls it every [`INTERRUPT_POLL_INTERVAL`] iterations and charges
    /// accumulated conflicts against its step budget; when it fires,
    /// `solve` returns [`SatResult::Interrupted`].
    pub fn set_interrupt(&mut self, interrupt: crate::interrupt::Interrupt) {
        self.interrupt = interrupt;
    }

    /// Connects this solver to a shared learnt-clause pool, registering it
    /// as a participant.
    ///
    /// From then on every clause learnt with LBD within the pool's glue
    /// bound is exported (unless this solver's interrupt has already
    /// fired — a preempted racer must not publish work the caller is about
    /// to discard), and the siblings' exports are imported at decision
    /// level 0 on query entry and at every restart.  All participants must
    /// share this solver's variable numbering.
    pub fn attach_pool(&mut self, pool: Arc<ClausePool>) {
        let id = pool.register();
        self.pool = Some(PoolHandle {
            pool,
            id,
            cursor: 0,
            pending: Vec::new(),
        });
    }

    /// Sets the saved phase of `var`: the polarity its next decision tries
    /// first.  Used to seed a solver from a COI-overlapping sibling's
    /// latch polarities instead of starting from the all-false default.
    pub fn set_phase(&mut self, var: Var, positive: bool) {
        self.phase[var] = positive;
    }

    /// Adds `boost` activity-increment units to `var`'s VSIDS activity so
    /// early decisions favour it (the cross-property seeding hook).
    pub fn boost_activity(&mut self, var: Var, boost: f64) {
        self.activity[var] += self.act_inc * boost;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
        self.order.bumped(var, &self.activity);
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses (original plus learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of live learnt clauses.
    pub fn num_learnts(&self) -> usize {
        self.num_learnts
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        self.assigns.push(Assign::Unassigned);
        self.levels.push(0);
        self.reasons.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.seen.push(false);
        self.order.grow();
        self.order.insert(v, &self.activity);
        v
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Adding an empty clause, or a clause that is falsified at decision
    /// level 0, makes the instance permanently unsatisfiable.  Adding a
    /// clause after a satisfiable query invalidates the previous model (the
    /// solver returns to decision level 0 first).
    pub fn add_clause(&mut self, lits: &[SatLit]) {
        if self.unsat {
            return;
        }
        if !self.trail_lim.is_empty() {
            self.backtrack(0);
        }
        // Simplify: remove duplicates and satisfied/false literals at level 0.
        let mut simplified: Vec<SatLit> = Vec::with_capacity(lits.len());
        for &lit in lits {
            match self.lit_value(lit) {
                Some(true) => return, // already satisfied
                Some(false) => continue,
                None => {
                    if simplified.contains(&lit.negate()) {
                        return; // tautology
                    }
                    if !simplified.contains(&lit) {
                        simplified.push(lit);
                    }
                }
            }
        }
        match simplified.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(simplified[0], NO_REASON) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watch(simplified[0], idx);
                self.watch(simplified[1], idx);
                self.clauses.push(Clause {
                    lits: simplified,
                    learnt: false,
                    lbd: 0,
                    act: 0.0,
                });
            }
        }
    }

    /// Drains the sibling clauses published to the attached pool since the
    /// last drain into this solver's database, marked learnt so `reduce_db`
    /// can evict them again.  Must run at decision level 0.  Returns
    /// `false` when an import revealed level-0 unsatisfiability.
    fn import_shared(&mut self) -> bool {
        let batch = match &mut self.pool {
            None => return !self.unsat,
            Some(handle) => {
                let mut batch = std::mem::take(&mut handle.pending);
                batch.extend(handle.pool.fetch(handle.id, &mut handle.cursor));
                batch
            }
        };
        if batch.is_empty() {
            return !self.unsat;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let mut attached = 0u64;
        let mut deferred: Vec<(Vec<SatLit>, u32)> = Vec::new();
        for (lits, lbd) in batch {
            // A sibling (or, for a pool reused across properties with
            // identical cones, an earlier run) may reference variables
            // this solver has not allocated yet: defer those clauses
            // until the unrolling grows into them.
            if lits.iter().any(|l| l.var() >= self.num_vars) {
                deferred.push((lits, lbd));
                continue;
            }
            if self.import_clause(&lits, lbd) {
                attached += 1;
            }
            if self.unsat {
                break;
            }
        }
        if let Some(handle) = &mut self.pool {
            handle.pending = deferred;
            handle.pool.note_imports(attached);
        }
        !self.unsat
    }

    /// Attaches one imported clause, mirroring [`Solver::add_clause`]'s
    /// level-0 simplification but recording the clause as learnt with the
    /// exporter's LBD (so the reduction heuristics treat it like local
    /// learnt clauses).  Returns `true` when the clause was integrated
    /// (attached, or enqueued as a level-0 unit).
    fn import_clause(&mut self, lits: &[SatLit], lbd: u32) -> bool {
        if self.unsat {
            return false;
        }
        let mut simplified: Vec<SatLit> = Vec::with_capacity(lits.len());
        for &lit in lits {
            match self.lit_value(lit) {
                Some(true) => return false, // already satisfied
                Some(false) => continue,
                None => {
                    if simplified.contains(&lit.negate()) {
                        return false; // tautology
                    }
                    if !simplified.contains(&lit) {
                        simplified.push(lit);
                    }
                }
            }
        }
        match simplified.len() {
            0 => {
                // Imported clauses are implied by the shared database, so a
                // level-0-falsified import means the instance is unsat.
                self.unsat = true;
                false
            }
            1 => {
                if !self.enqueue(simplified[0], NO_REASON) || self.propagate().is_some() {
                    self.unsat = true;
                }
                true
            }
            _ => {
                let idx = self.clauses.len();
                self.watch(simplified[0], idx);
                self.watch(simplified[1], idx);
                self.clauses.push(Clause {
                    lits: simplified,
                    learnt: true,
                    lbd: lbd.max(1),
                    act: 0.0,
                });
                self.num_learnts += 1;
                true
            }
        }
    }

    fn watch(&mut self, lit: SatLit, clause: usize) {
        self.watches[lit.index()].push(clause);
    }

    fn lit_value(&self, lit: SatLit) -> Option<bool> {
        match self.assigns[lit.var()] {
            Assign::Unassigned => None,
            Assign::True => Some(lit.is_positive()),
            Assign::False => Some(!lit.is_positive()),
        }
    }

    /// The model value of `var` after a [`SatResult::Sat`] answer.
    ///
    /// Returns `None` if the variable was irrelevant (never assigned).
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.assigns[var] {
            Assign::Unassigned => None,
            Assign::True => Some(true),
            Assign::False => Some(false),
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn enqueue(&mut self, lit: SatLit, reason: usize) -> bool {
        match self.lit_value(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = lit.var();
                self.assigns[v] = if lit.is_positive() {
                    Assign::True
                } else {
                    Assign::False
                };
                self.levels[v] = self.decision_level();
                self.reasons[v] = reason;
                self.phase[v] = lit.is_positive();
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation.  Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let falsified = lit.negate();
            let mut watchers = std::mem::take(&mut self.watches[falsified.index()]);
            let mut i = 0;
            while i < watchers.len() {
                let ci = watchers[i];
                // Ensure the falsified literal is in position 1.
                let (w0, w1) = {
                    let c = &mut self.clauses[ci];
                    if c.lits[0] == falsified {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits[1])
                };
                debug_assert_eq!(w1, falsified);
                // If the other watched literal is true, the clause is satisfied.
                if self.lit_value(w0) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let cand = self.clauses[ci].lits[k];
                    if self.lit_value(cand) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[cand.index()].push(ci);
                        watchers.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                if !self.enqueue(w0, ci) {
                    // Conflict: restore remaining watchers and report.
                    self.watches[falsified.index()].append(&mut watchers);
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[falsified.index()] = watchers;
        }
        None
    }

    fn bump_activity(&mut self, var: Var) {
        self.activity[var] += self.act_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
        self.order.bumped(var, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.act_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    fn bump_clause(&mut self, ci: usize) {
        if !self.clauses[ci].learnt {
            return;
        }
        self.clauses[ci].act += self.cla_inc;
        if self.clauses[ci].act > 1e20 {
            for c in &mut self.clauses {
                if c.learnt {
                    c.act *= 1e-20;
                }
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Literal-block distance of a clause under the current assignment: the
    /// number of distinct decision levels among its literals.
    fn compute_lbd(&mut self, lits: &[SatLit]) -> u32 {
        self.lbd_counter += 1;
        let stamp = self.lbd_counter;
        let mut lbd = 0;
        for &l in lits {
            let lv = self.levels[l.var()];
            if lv >= self.lbd_stamp.len() {
                self.lbd_stamp.resize(lv + 1, 0);
            }
            if self.lbd_stamp[lv] != stamp {
                self.lbd_stamp[lv] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// First-UIP conflict analysis.  Returns the learnt clause (asserting
    /// literal in position 0, a watchable highest-level literal in position
    /// 1) and the level to backtrack to.
    ///
    /// When [`SolverConfig::minimize`] is on, the learnt clause is shrunk by
    /// recursive minimization: a literal is dropped when its reason-graph
    /// antecedents are all (transitively) already implied by the remaining
    /// clause literals.
    fn analyze(&mut self, conflict: usize) -> (Vec<SatLit>, usize) {
        let mut learnt: Vec<SatLit> = vec![SatLit::pos(0)]; // placeholder for the asserting literal
        self.analyze_toclear.clear();
        let mut counter = 0usize;
        let mut lit_opt: Option<SatLit> = None;
        let mut clause_idx = conflict;
        let mut trail_pos = self.trail.len();
        let current_level = self.decision_level();

        loop {
            self.bump_clause(clause_idx);
            // Skip position 0 of reason clauses: it holds the implied
            // literal being resolved on (established at enqueue time and
            // stable while the clause is a reason).
            let start = if lit_opt.is_none() { 0 } else { 1 };
            let len = self.clauses[clause_idx].lits.len();
            for k in start..len {
                let q = self.clauses[clause_idx].lits[k];
                let v = q.var();
                if !self.seen[v] && self.levels[v] > 0 {
                    self.seen[v] = true;
                    self.analyze_toclear.push(v);
                    self.bump_activity(v);
                    if self.levels[v] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve on.  Marks stay
            // set (the minimization pass below reads them); positions
            // strictly decrease, so each variable is resolved at most once.
            loop {
                trail_pos -= 1;
                let lit = self.trail[trail_pos];
                if self.seen[lit.var()] && self.levels[lit.var()] >= current_level {
                    lit_opt = Some(lit);
                    break;
                }
            }
            let p = lit_opt.expect("resolution literal");
            counter -= 1;
            if counter == 0 {
                learnt[0] = p.negate();
                break;
            }
            clause_idx = self.reasons[p.var()];
            debug_assert_ne!(clause_idx, NO_REASON);
        }

        if self.config.minimize {
            self.minimize_learnt(&mut learnt);
        }

        // Clear the analysis marks (including any set during minimization).
        for i in 0..self.analyze_toclear.len() {
            let v = self.analyze_toclear[i];
            self.seen[v] = false;
        }

        // Backtrack level: second-highest level in the learnt clause.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var()] > self.levels[learnt[max_i].var()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.levels[learnt[1].var()]
        };
        (learnt, backtrack_level)
    }

    /// Recursive learnt-clause minimization (MiniSat's `litRedundant`):
    /// drops clause literals whose entire reason graph is absorbed by the
    /// remaining literals.  Shorter clauses propagate faster and yield
    /// smaller PDR unsat cores.
    fn minimize_learnt(&mut self, learnt: &mut Vec<SatLit>) {
        let mut abstract_levels: u32 = 0;
        for l in &learnt[1..] {
            abstract_levels |= 1u32 << (self.levels[l.var()] & 31);
        }
        let mut idx = 1;
        while idx < learnt.len() {
            let v = learnt[idx].var();
            if self.reasons[v] != NO_REASON && self.lit_redundant(v, abstract_levels) {
                learnt.swap_remove(idx);
                self.stats.minimized_lits += 1;
            } else {
                idx += 1;
            }
        }
    }

    /// `true` when every antecedent of `v` is (transitively) implied by
    /// literals already marked `seen` — i.e. the learnt clause without `v`
    /// still covers the conflict.
    fn lit_redundant(&mut self, v: Var, abstract_levels: u32) -> bool {
        self.min_stack.clear();
        self.min_stack.push(v);
        let top = self.analyze_toclear.len();
        while let Some(u) = self.min_stack.pop() {
            let reason = self.reasons[u];
            debug_assert_ne!(reason, NO_REASON);
            let len = self.clauses[reason].lits.len();
            for k in 0..len {
                let q = self.clauses[reason].lits[k];
                let qv = q.var();
                if qv != u && !self.seen[qv] && self.levels[qv] > 0 {
                    let has_reason = self.reasons[qv] != NO_REASON;
                    let level_ok = (1u32 << (self.levels[qv] & 31)) & abstract_levels != 0;
                    if has_reason && level_ok {
                        self.seen[qv] = true;
                        self.analyze_toclear.push(qv);
                        self.min_stack.push(qv);
                    } else {
                        // A decision (or a level outside the clause) feeds
                        // this literal: not redundant.  Undo the
                        // speculative marks of this probe.
                        for i in top..self.analyze_toclear.len() {
                            let w = self.analyze_toclear[i];
                            self.seen[w] = false;
                        }
                        self.analyze_toclear.truncate(top);
                        return false;
                    }
                }
            }
        }
        true
    }

    /// MiniSat-style `analyzeFinal`: starting from the literals of a
    /// falsified clause (or a failed assumption), walks the implication
    /// graph back to the assumption decisions that entail the conflict.
    ///
    /// Must run before backtracking, while levels/reasons/trail are intact.
    /// Returns the subset of the assumption literals responsible.
    fn analyze_final(&mut self, failed: SatLit) -> Vec<SatLit> {
        if self.decision_level() == 0 {
            return Vec::new();
        }
        self.analyze_toclear.clear();
        let v = failed.var();
        if self.levels[v] > 0 {
            self.seen[v] = true;
            self.analyze_toclear.push(v);
        }
        self.analyze_final_walk()
    }

    /// [`Solver::analyze_final`] seeded with the literals of a falsified
    /// clause, read in place (no clause clone on the conflict path).
    fn analyze_final_clause(&mut self, conflict: usize) -> Vec<SatLit> {
        if self.decision_level() == 0 {
            return Vec::new();
        }
        self.analyze_toclear.clear();
        let len = self.clauses[conflict].lits.len();
        for k in 0..len {
            let lit = self.clauses[conflict].lits[k];
            let v = lit.var();
            if self.levels[v] > 0 && !self.seen[v] {
                self.seen[v] = true;
                self.analyze_toclear.push(v);
            }
        }
        self.analyze_final_walk()
    }

    fn analyze_final_walk(&mut self) -> Vec<SatLit> {
        let mut core = Vec::new();
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            if !self.seen[v] {
                continue;
            }
            let reason = self.reasons[v];
            if reason == NO_REASON {
                // A decision below the assumption prefix: by construction
                // every decision reached here is an assumption literal.
                core.push(lit);
            } else {
                // Mark the antecedents (the implied literal itself is `v`,
                // which is already seen, so marking the whole clause is
                // safe regardless of watched-literal reordering).
                for j in 0..self.clauses[reason].lits.len() {
                    let q = self.clauses[reason].lits[j];
                    let qv = q.var();
                    if qv != v && self.levels[qv] > 0 && !self.seen[qv] {
                        self.seen[qv] = true;
                        self.analyze_toclear.push(qv);
                    }
                }
            }
        }
        for i in 0..self.analyze_toclear.len() {
            let v = self.analyze_toclear[i];
            self.seen[v] = false;
        }
        core
    }

    fn backtrack(&mut self, level: usize) {
        while self.decision_level() > level {
            let start = self.trail_lim.pop().expect("trail limit");
            while self.trail.len() > start {
                let lit = self.trail.pop().expect("trail entry");
                let v = lit.var();
                self.assigns[v] = Assign::Unassigned;
                self.reasons[v] = NO_REASON;
                self.order.insert(v, &self.activity);
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v] == Assign::Unassigned {
                return Some(v);
            }
        }
        // Every unassigned variable sits in the heap by construction; the
        // scan is pure insurance against an invariant slip.
        (0..self.num_vars).find(|&v| self.assigns[v] == Assign::Unassigned)
    }

    /// Garbage-collects the clause database at decision level 0.
    ///
    /// Removes every clause satisfied at level 0 — which is how clauses
    /// guarded by a *retired* activation literal (the PDR pattern: assert
    /// the negated activation as a unit) and stale learnt clauses leave the
    /// database for good — and deletes level-0-falsified literals from the
    /// clauses that remain, rebuilding the watch lists from scratch.
    ///
    /// Semantically a no-op: unit propagation already treats satisfied
    /// clauses and false literals as inert; this reclaims the memory and
    /// the watch-list traversal cost.  Returns `(clauses_removed,
    /// literals_removed)`.
    pub fn simplify(&mut self) -> (usize, usize) {
        if self.unsat {
            return (0, 0);
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return (0, 0);
        }
        self.rebuild_db(&[])
    }

    /// Evicts high-glue, low-activity learnt clauses once the live learnt
    /// count crosses the ceiling.  Clauses with glue ≤ 2 and binary clauses
    /// are kept unconditionally; of the rest, the worse half (by glue, then
    /// activity) is dropped.  Runs at decision level 0, where no surviving
    /// reason references a learnt clause, so the database can be compacted
    /// in place.
    fn reduce_db(&mut self) {
        self.stats.reductions += 1;
        let mut candidates: Vec<(u32, f64, usize)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && c.lits.len() > 2 && c.lbd > 2)
            .map(|(i, c)| (c.lbd, c.act, i))
            .collect();
        // Worst first: highest glue, then lowest activity, then oldest.
        candidates.sort_by(|a, b| {
            b.0.cmp(&a.0)
                .then(a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .then(a.2.cmp(&b.2))
        });
        let ndelete = candidates.len() / 2;
        let mut delete = vec![false; self.clauses.len()];
        for &(_, _, i) in candidates.iter().take(ndelete) {
            delete[i] = true;
        }
        self.rebuild_db(&delete);
        self.stats.learnt_kept += self.num_learnts as u64;
    }

    /// Rebuilds the clause database at decision level 0: drops clauses
    /// satisfied at level 0 and those marked in `delete`, strips
    /// level-0-false literals, and rebuilds the watch lists.  `delete` may
    /// be shorter than the clause vector (missing entries mean keep).
    fn rebuild_db(&mut self, delete: &[bool]) -> (usize, usize) {
        debug_assert_eq!(self.decision_level(), 0);
        let old_clauses = std::mem::take(&mut self.clauses);
        for watch_list in &mut self.watches {
            watch_list.clear();
        }
        // Reasons of level-0 assignments may point at clause indices that
        // are about to be compacted away; level-0 literals are never
        // resolved on, so the references can simply be dropped.
        for i in 0..self.trail.len() {
            self.reasons[self.trail[i].var()] = NO_REASON;
        }
        self.num_learnts = 0;
        let mut removed_clauses = 0;
        let mut removed_lits = 0;
        'clauses: for (ci, mut clause) in old_clauses.into_iter().enumerate() {
            if delete.get(ci).copied().unwrap_or(false) {
                removed_clauses += 1;
                self.stats.learnt_deleted += 1;
                continue;
            }
            let mut i = 0;
            while i < clause.lits.len() {
                match self.lit_value(clause.lits[i]) {
                    Some(true) => {
                        removed_clauses += 1;
                        continue 'clauses;
                    }
                    Some(false) => {
                        clause.lits.swap_remove(i);
                        removed_lits += 1;
                    }
                    None => i += 1,
                }
            }
            // After a conflict-free level-0 propagation every surviving
            // clause has at least two unassigned literals; handle the
            // shorter shapes defensively anyway.
            match clause.lits.len() {
                0 => {
                    self.unsat = true;
                    return (removed_clauses, removed_lits);
                }
                1 => {
                    removed_clauses += 1;
                    if !self.enqueue(clause.lits[0], NO_REASON) {
                        self.unsat = true;
                        return (removed_clauses, removed_lits);
                    }
                }
                _ => {
                    let idx = self.clauses.len();
                    self.watch(clause.lits[0], idx);
                    self.watch(clause.lits[1], idx);
                    if clause.learnt {
                        self.num_learnts += 1;
                    }
                    self.clauses.push(clause);
                }
            }
        }
        if self.propagate().is_some() {
            self.unsat = true;
        }
        (removed_clauses, removed_lits)
    }

    /// After an [`SatResult::Unsat`] answer from [`Solver::solve`], the
    /// subset of the assumption literals that sufficed for the conflict (the
    /// *final conflict*).  Empty when the clause database is unsatisfiable
    /// on its own.  This is the core primitive behind activation-literal
    /// based incremental solving: the PDR engine assumes a cube literal per
    /// latch and reads back which of them an UNSAT answer actually used.
    pub fn unsat_core(&self) -> &[SatLit] {
        &self.core
    }

    /// Solves the instance under the given assumptions.
    ///
    /// Assumption literals are forced true for this query only; the clause
    /// database and learnt clauses persist between calls, enabling
    /// incremental use by the bounded model checker and the PDR engine.  On
    /// an [`SatResult::Unsat`] answer, [`Solver::unsat_core`] reports which
    /// assumptions the conflict depended on.
    pub fn solve(&mut self, assumptions: &[SatLit]) -> SatResult {
        let result = self.search(assumptions);
        // The search loop charges the step budget only at its poll
        // cadence, so conflicts spent after the last poll point would
        // otherwise never reach the budget at all — a stream of
        // sub-cadence queries could run forever on an exhausted budget,
        // and a race turn quantum finer than the cadence would never
        // preempt.  Charge the tail here: the completed answer stands
        // (the work is already done), but the latch makes the caller's
        // next budget check observe the true spend.
        let tail = self.stats.conflicts - self.conflicts_charged;
        self.conflicts_charged = self.stats.conflicts;
        if tail > 0 {
            self.interrupt.charge(tail);
        }
        result
    }

    fn search(&mut self, assumptions: &[SatLit]) -> SatResult {
        self.core.clear();
        if self.unsat {
            return SatResult::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        if self.restart_next == 0 {
            self.restart_next = u64::from(self.config.restart_base.max(1));
        }
        if self.max_learnts == 0 {
            self.max_learnts = self.config.reduce_base.max(16);
        }
        // An interrupt latched before this query (deadline already past,
        // budget already spent) preempts it outright.
        if self.interrupt.poll().is_some() {
            self.backtrack(0);
            return SatResult::Interrupted;
        }
        // Pull in whatever the portfolio siblings published since the last
        // query (the solver sits at decision level 0 here).
        if !self.import_shared() {
            return SatResult::Unsat;
        }
        let mut iterations: u64 = 0;
        let mut props_polled = self.stats.propagations;

        loop {
            // Cooperative preemption: every INTERRUPT_POLL_INTERVAL loop
            // iterations — or every PROPAGATION_POLL_INTERVAL propagations,
            // whichever comes first — charge the conflicts since the last
            // poll to the step budget and check the deadline/cancel
            // sources.
            iterations += 1;
            if iterations & (INTERRUPT_POLL_INTERVAL - 1) == 0
                || self.stats.propagations.wrapping_sub(props_polled) >= PROPAGATION_POLL_INTERVAL
            {
                props_polled = self.stats.propagations;
                let delta = self.stats.conflicts - self.conflicts_charged;
                self.conflicts_charged = self.stats.conflicts;
                if self.interrupt.charge(delta).is_some() || self.interrupt.poll().is_some() {
                    self.backtrack(0);
                    return SatResult::Interrupted;
                }
            }
            // Luby restart: abandon the current prefix (saved phases make
            // the replay cheap); assumptions are re-applied below.  Level 0
            // is also the import point for pooled sibling clauses.
            if self.config.restarts && self.stats.conflicts >= self.restart_next {
                self.stats.restarts += 1;
                self.restart_seq += 1;
                // `restart_base` is clamped to ≥ 1: a zero interval would
                // restart on every iteration without ever conflicting.
                self.restart_next = self.stats.conflicts
                    + u64::from(self.config.restart_base.max(1)) * luby(self.restart_seq);
                self.backtrack(0);
                if !self.import_shared() {
                    return SatResult::Unsat;
                }
            }
            // Periodic learnt-clause database reduction (needs level 0:
            // reasons reference clause indices about to be compacted).
            if self.config.reduce && self.num_learnts >= self.max_learnts {
                self.backtrack(0);
                if self.propagate().is_some() {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                self.reduce_db();
                self.max_learnts += self.max_learnts / 2;
                if self.unsat {
                    return SatResult::Unsat;
                }
            }

            // (Re-)apply assumptions at successive decision levels.
            while self.decision_level() < assumptions.len() {
                let a = assumptions[self.decision_level()];
                match self.lit_value(a) {
                    Some(true) => {
                        // Already satisfied: open an empty decision level so
                        // indexing stays aligned.
                        self.trail_lim.push(self.trail.len());
                    }
                    Some(false) => {
                        // The assumption is falsified by earlier assumptions
                        // (and the clause database): the core is `a` plus
                        // whatever forced its negation.
                        self.core = self.analyze_final(a);
                        if !self.core.contains(&a) {
                            self.core.push(a);
                        }
                        self.backtrack(0);
                        return SatResult::Unsat;
                    }
                    None => {
                        self.trail_lim.push(self.trail.len());
                        self.stats.decisions += 1;
                        let ok = self.enqueue(a, NO_REASON);
                        debug_assert!(ok);
                    }
                }
                if let Some(conflict) = self.propagate() {
                    self.core = self.analyze_final_clause(conflict);
                    self.backtrack(0);
                    return SatResult::Unsat;
                }
            }

            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() <= assumptions.len() {
                    // Conflict that depends only on assumptions (or level 0).
                    self.core = self.analyze_final_clause(conflict);
                    self.backtrack(0);
                    if self.decision_level() == 0 && assumptions.is_empty() {
                        self.unsat = true;
                    }
                    return SatResult::Unsat;
                }
                let (learnt, level) = self.analyze(conflict);
                // The (minimized) learnt clause must still be falsified by
                // the conflicting assignment — the certificate that
                // minimization only dropped redundant literals.
                debug_assert!(
                    learnt.iter().all(|&l| self.lit_value(l) == Some(false)),
                    "learnt clause not falsified at the conflict"
                );
                let lbd = self.compute_lbd(&learnt);
                // Export within the glue bound — unless this solver's
                // interrupt already fired, in which case the clause was
                // derived on borrowed time and a cancelled racer must not
                // publish it ("preempted ≠ proven" extends to exports).
                if let Some(handle) = &self.pool {
                    if self.interrupt.triggered().is_none() {
                        handle.pool.publish(handle.id, &learnt, lbd);
                    }
                }
                self.backtrack(level);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    // Unit learnt clause: assert at level 0 so it persists;
                    // assumptions are re-applied by the outer loop.
                    self.backtrack(0);
                    if !self.enqueue(asserting, NO_REASON) {
                        // The implied unit contradicts level 0: the clause
                        // database itself is unsatisfiable.
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                    if self.propagate().is_some() {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                } else {
                    let idx = self.clauses.len();
                    self.watch(learnt[0], idx);
                    self.watch(learnt[1], idx);
                    self.clauses.push(Clause {
                        lits: learnt,
                        learnt: true,
                        lbd,
                        act: 0.0,
                    });
                    self.num_learnts += 1;
                    self.stats.learnt += 1;
                    self.bump_clause(idx);
                    if !self.enqueue(asserting, idx) {
                        self.backtrack(0);
                        return SatResult::Unsat;
                    }
                }
                self.decay_activities();
            } else {
                match self.pick_branch_var() {
                    None => return SatResult::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = SatLit::new(v, self.phase[v]);
                        let ok = self.enqueue(lit, NO_REASON);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
/// (`i` is 1-based).
fn luby(i: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut i = i;
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_encoding() {
        let a = SatLit::pos(3);
        assert_eq!(a.var(), 3);
        assert!(a.is_positive());
        assert!(!a.negate().is_positive());
        assert_eq!(a.negate().negate(), a);
        assert_eq!(a.to_string(), "4");
        assert_eq!(a.negate().to_string(), "-4");
    }

    #[test]
    fn luby_sequence_is_correct() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[SatLit::pos(a)]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[SatLit::pos(a)]);
        s.add_clause(&[SatLit::neg(a)]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        s.add_clause(&[]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn implication_chain() {
        // a -> b -> c -> d, with a forced true: all must be true.
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(&[SatLit::neg(w[0]), SatLit::pos(w[1])]);
        }
        s.add_clause(&[SatLit::pos(vars[0])]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        for &v in &vars {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: unsatisfiable.  Exercises conflict analysis.
        let mut s = Solver::new();
        // p[i][j] = pigeon i in hole j
        let p: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        // Every pigeon in some hole.
        for row in &p {
            s.add_clause(&[SatLit::pos(row[0]), SatLit::pos(row[1])]);
        }
        // No two pigeons share a hole.
        for hole in 0..2 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in p.iter().skip(i1 + 1) {
                    s.add_clause(&[SatLit::neg(row1[hole]), SatLit::neg(row2[hole])]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn solving_under_assumptions_is_incremental() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[SatLit::pos(a), SatLit::pos(b)]);
        // Assuming !a forces b.
        assert_eq!(s.solve(&[SatLit::neg(a)]), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
        // Assuming !a and !b is unsat.
        assert_eq!(s.solve(&[SatLit::neg(a), SatLit::neg(b)]), SatResult::Unsat);
        // The solver remains usable afterwards.
        assert_eq!(s.solve(&[SatLit::pos(a)]), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn unsat_core_is_a_subset_of_the_assumptions() {
        // (a | b), (!a | c), (!b | c): assuming !c and a is unsat, and the
        // core must not mention the irrelevant assumption d.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let d = s.new_var();
        s.add_clause(&[SatLit::pos(a), SatLit::pos(b)]);
        s.add_clause(&[SatLit::neg(a), SatLit::pos(c)]);
        s.add_clause(&[SatLit::neg(b), SatLit::pos(c)]);
        let assumptions = [SatLit::pos(d), SatLit::neg(c), SatLit::pos(a)];
        assert_eq!(s.solve(&assumptions), SatResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(!core.is_empty());
        for l in &core {
            assert!(assumptions.contains(l), "core literal {l} not assumed");
        }
        assert!(
            !core.contains(&SatLit::pos(d)),
            "irrelevant literal in core"
        );
        // The core itself must be unsatisfiable.
        assert_eq!(s.solve(&core), SatResult::Unsat);
        // The solver stays usable and Sat answers clear the core.
        assert_eq!(s.solve(&[SatLit::pos(c)]), SatResult::Sat);
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn unsat_core_of_directly_conflicting_assumptions() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[SatLit::pos(a), SatLit::pos(b)]);
        assert_eq!(s.solve(&[SatLit::pos(a), SatLit::neg(a)]), SatResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&SatLit::pos(a)));
        assert!(core.contains(&SatLit::neg(a)));
    }

    #[test]
    fn unsat_core_empty_when_database_is_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[SatLit::pos(a)]);
        s.add_clause(&[SatLit::neg(a)]);
        assert_eq!(s.solve(&[SatLit::pos(b)]), SatResult::Unsat);
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn activation_literals_retire_clauses() {
        // The PDR usage pattern: a clause guarded by an activation literal
        // participates only while the activation is assumed, and is retired
        // for good by asserting the negated activation as a unit.
        let mut s = Solver::new();
        let act = s.new_var();
        let x = s.new_var();
        s.add_clause(&[SatLit::neg(act), SatLit::pos(x)]);
        assert_eq!(
            s.solve(&[SatLit::pos(act), SatLit::neg(x)]),
            SatResult::Unsat
        );
        assert_eq!(s.solve(&[SatLit::neg(x)]), SatResult::Sat);
        s.add_clause(&[SatLit::neg(act)]);
        assert_eq!(s.solve(&[SatLit::neg(x)]), SatResult::Sat);
    }

    #[test]
    fn random_cores_are_unsat_subsets() {
        // Random instances solved under random assumptions: every Unsat
        // answer must yield a core that is (a) a subset of the assumptions
        // and (b) itself unsatisfiable.
        let mut seed: u64 = 0xDEADBEEF;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut unsat_seen = 0;
        for _ in 0..60 {
            let num_vars = 8;
            let mut s = Solver::new();
            for _ in 0..num_vars {
                s.new_var();
            }
            for _ in 0..20 {
                let clause: Vec<SatLit> = (0..3)
                    .map(|_| SatLit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                    .collect();
                s.add_clause(&clause);
            }
            let mut assumptions: Vec<SatLit> = (0..4)
                .map(|_| SatLit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                .collect();
            assumptions.dedup_by_key(|l| l.var());
            if s.solve(&assumptions) == SatResult::Unsat {
                unsat_seen += 1;
                let core = s.unsat_core().to_vec();
                for l in &core {
                    assert!(assumptions.contains(l));
                }
                assert_eq!(s.solve(&core), SatResult::Unsat, "core not unsat");
            }
        }
        assert!(unsat_seen > 0, "test never exercised the Unsat path");
    }

    #[test]
    fn simplify_removes_retired_activation_clauses() {
        let mut s = Solver::new();
        let act = s.new_var();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause(&[SatLit::neg(act), SatLit::pos(x)]);
        s.add_clause(&[SatLit::neg(act), SatLit::pos(y)]);
        s.add_clause(&[SatLit::pos(x), SatLit::pos(y)]);
        assert_eq!(s.num_clauses(), 3);
        // Retire the activation literal for good (the PDR pattern).
        s.add_clause(&[SatLit::neg(act)]);
        let (clauses_removed, _) = s.simplify();
        assert_eq!(clauses_removed, 2);
        assert_eq!(s.num_clauses(), 1);
        // The retired clauses no longer constrain x and y.
        assert_eq!(s.solve(&[SatLit::neg(x)]), SatResult::Sat);
        assert_eq!(s.value(y), Some(true));
    }

    #[test]
    fn simplify_strips_false_literals() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[SatLit::pos(a), SatLit::pos(b), SatLit::pos(c)]);
        s.add_clause(&[SatLit::neg(a)]);
        let (clauses_removed, lits_removed) = s.simplify();
        assert_eq!(clauses_removed, 0);
        assert_eq!(lits_removed, 1);
        // The shrunk clause (b | c) still constrains correctly.
        assert_eq!(s.solve(&[SatLit::neg(b)]), SatResult::Sat);
        assert_eq!(s.value(c), Some(true));
        assert_eq!(s.solve(&[SatLit::neg(b), SatLit::neg(c)]), SatResult::Unsat);
    }

    #[test]
    fn simplify_preserves_answers_on_random_instances() {
        // Interleaving simplify() with solving must never change a verdict:
        // build the same instance into a plain solver and a simplified one
        // and compare under identical assumptions.
        let mut seed: u64 = 0xC0FFEE;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..40 {
            let num_vars = 8;
            let clauses: Vec<Vec<SatLit>> = (0..24)
                .map(|_| {
                    (0..3)
                        .map(|_| SatLit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                        .collect()
                })
                .collect();
            let mut plain = Solver::new();
            let mut gc = Solver::new();
            for _ in 0..num_vars {
                plain.new_var();
                gc.new_var();
            }
            for (i, clause) in clauses.iter().enumerate() {
                plain.add_clause(clause);
                gc.add_clause(clause);
                if i == clauses.len() / 2 {
                    // Mid-build solve generates learnt clauses to collect.
                    let _ = gc.solve(&[]);
                    gc.simplify();
                }
            }
            gc.simplify();
            let assumptions: Vec<SatLit> = (0..3)
                .map(|_| SatLit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                .collect();
            assert_eq!(
                plain.solve(&assumptions),
                gc.solve(&assumptions),
                "simplify changed the verdict on {clauses:?} under {assumptions:?}"
            );
        }
    }

    #[test]
    fn xor_chain_satisfiable() {
        // Tseitin-encoded xor chain: x1 ^ x2 ^ x3 = 1.
        let mut s = Solver::new();
        let x1 = s.new_var();
        let x2 = s.new_var();
        let x3 = s.new_var();
        let t = s.new_var(); // t = x1 ^ x2
                             // t <-> x1 xor x2
        s.add_clause(&[SatLit::neg(t), SatLit::pos(x1), SatLit::pos(x2)]);
        s.add_clause(&[SatLit::neg(t), SatLit::neg(x1), SatLit::neg(x2)]);
        s.add_clause(&[SatLit::pos(t), SatLit::neg(x1), SatLit::pos(x2)]);
        s.add_clause(&[SatLit::pos(t), SatLit::pos(x1), SatLit::neg(x2)]);
        // t xor x3 = 1  ->  t != x3
        s.add_clause(&[SatLit::pos(t), SatLit::pos(x3)]);
        s.add_clause(&[SatLit::neg(t), SatLit::neg(x3)]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        let v1 = s.value(x1).unwrap();
        let v2 = s.value(x2).unwrap();
        let v3 = s.value(x3).unwrap();
        assert!(v1 ^ v2 ^ v3);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[SatLit::pos(a), SatLit::pos(a), SatLit::pos(b)]);
        s.add_clause(&[SatLit::pos(a), SatLit::neg(a)]); // tautology: ignored
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    /// Builds a pseudo-random 3-SAT instance into `s` from `seed`.
    fn random_3sat(s: &mut Solver, seed: u64, num_vars: usize, num_clauses: usize) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        while s.num_vars() < num_vars {
            s.new_var();
        }
        for _ in 0..num_clauses {
            let clause: Vec<SatLit> = (0..3)
                .map(|_| SatLit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                .collect();
            s.add_clause(&clause);
        }
    }

    #[test]
    fn all_feature_configurations_agree() {
        // Restarts, minimization and reduction individually toggled off must
        // never change a verdict, and unsat cores must stay valid cores.
        let configs = [
            SolverConfig::default(),
            SolverConfig {
                restarts: false,
                ..SolverConfig::default()
            },
            SolverConfig {
                minimize: false,
                ..SolverConfig::default()
            },
            SolverConfig {
                reduce: false,
                ..SolverConfig::default()
            },
            SolverConfig::baseline(),
            // Aggressive settings so restarts and reduction actually fire
            // on these small instances.
            SolverConfig {
                restart_base: 2,
                reduce_base: 4,
                ..SolverConfig::default()
            },
        ];
        for seed in 1..40u64 {
            let mut verdicts = Vec::new();
            for config in configs {
                let mut s = Solver::with_config(config);
                random_3sat(&mut s, seed.wrapping_mul(0x9E3779B97F4A7C15), 10, 42);
                let assumptions = [
                    SatLit::new((seed % 10) as usize, seed % 2 == 0),
                    SatLit::new(((seed / 3) % 10) as usize, seed % 3 == 0),
                ];
                let result = s.solve(&assumptions);
                if result == SatResult::Unsat {
                    let core = s.unsat_core().to_vec();
                    for l in &core {
                        assert!(assumptions.contains(l), "core literal {l} not assumed");
                    }
                    assert_eq!(s.solve(&core), SatResult::Unsat, "core not unsat");
                }
                verdicts.push(result);
            }
            assert!(
                verdicts.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: configurations disagree: {verdicts:?}"
            );
        }
    }

    /// Encodes the pigeonhole principle PHP(holes + 1, holes) into `s`.
    fn pigeonhole(s: &mut Solver, holes: usize) {
        let p: Vec<Vec<Var>> = (0..holes + 1)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let clause: Vec<SatLit> = row.iter().map(|&v| SatLit::pos(v)).collect();
            s.add_clause(&clause);
        }
        for hole in 0..holes {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in p.iter().skip(i1 + 1) {
                    s.add_clause(&[SatLit::neg(row1[hole]), SatLit::neg(row2[hole])]);
                }
            }
        }
    }

    #[test]
    fn minimization_shrinks_learnt_clauses_and_keeps_them_falsified() {
        // Pigeonhole conflicts resolve through long implication chains, so
        // first-UIP clauses carry redundant literals.  The debug assertion
        // in `solve` checks every (minimized) learnt clause is still
        // falsified at its conflict; here we additionally require
        // minimization to actually fire, and the verdict to survive it.
        let mut with_min = Solver::new();
        let mut without_min = Solver::with_config(SolverConfig {
            minimize: false,
            ..SolverConfig::default()
        });
        pigeonhole(&mut with_min, 5);
        pigeonhole(&mut without_min, 5);
        assert_eq!(with_min.solve(&[]), SatResult::Unsat);
        assert_eq!(without_min.solve(&[]), SatResult::Unsat);
        assert!(
            with_min.stats.minimized_lits > 0,
            "minimization never removed a literal: {:?}",
            with_min.stats
        );
        assert_eq!(without_min.stats.minimized_lits, 0);
    }

    #[test]
    fn restarts_fire_and_preserve_verdicts() {
        // Pigeonhole 6-into-5: enough conflicts for several Luby restarts.
        let mut s = Solver::with_config(SolverConfig {
            restart_base: 1,
            ..SolverConfig::default()
        });
        pigeonhole(&mut s, 5);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
        assert!(s.stats.restarts > 0, "no restart fired: {:?}", s.stats);
    }

    #[test]
    fn zero_restart_interval_terminates() {
        // A pathological restart_base of 0 must be clamped, not livelock
        // (restart → undo decision → re-decide → restart …).
        let mut s = Solver::with_config(SolverConfig {
            restart_base: 0,
            ..SolverConfig::default()
        });
        pigeonhole(&mut s, 4);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
        let mut sat = Solver::with_config(SolverConfig {
            restart_base: 0,
            ..SolverConfig::default()
        });
        let a = sat.new_var();
        let b = sat.new_var();
        sat.add_clause(&[SatLit::pos(a), SatLit::pos(b)]);
        assert_eq!(sat.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn reduce_db_evicts_learnt_clauses_without_changing_verdicts() {
        let mut reducing = Solver::with_config(SolverConfig {
            reduce_base: 8,
            ..SolverConfig::default()
        });
        let mut plain = Solver::with_config(SolverConfig::baseline());
        pigeonhole(&mut reducing, 5);
        pigeonhole(&mut plain, 5);
        assert_eq!(reducing.solve(&[]), plain.solve(&[]));
        assert!(
            reducing.stats.reductions > 0 && reducing.stats.learnt_deleted > 0,
            "reduce_db never fired: {:?}",
            reducing.stats
        );
    }

    #[test]
    fn stats_count_search_work() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[SatLit::pos(a), SatLit::pos(b)]);
        s.add_clause(&[SatLit::neg(a), SatLit::pos(b)]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert!(s.stats.decisions > 0);
        assert!(s.stats.propagations > 0);
        let total = s.stats + SolverStats::default();
        assert_eq!(total, s.stats);
    }

    #[test]
    fn pool_filters_by_glue_bound_and_deduplicates() {
        let pool = ClausePool::new(2);
        let a = SatLit::pos(0);
        let b = SatLit::pos(1);
        pool.publish(0, &[a, b], 2);
        assert_eq!(pool.exported(), 1);
        // Same literal set (any order) is a duplicate.
        pool.publish(1, &[b, a], 1);
        assert_eq!(pool.exported(), 1);
        assert_eq!(pool.filtered(), 1);
        // Above the glue bound: rejected.
        pool.publish(0, &[a, b.negate()], 3);
        assert_eq!(pool.exported(), 1);
        assert_eq!(pool.filtered(), 2);
        assert_eq!(pool.len(), 1);
        // Readers skip their own clauses.
        let mut cursor = 0;
        assert!(pool.fetch(0, &mut cursor).is_empty());
        let mut cursor = 0;
        assert_eq!(pool.fetch(1, &mut cursor).len(), 1);
        // The cursor advanced past everything scanned.
        assert!(pool.fetch(1, &mut cursor).is_empty());
    }

    #[test]
    fn shared_pool_preserves_verdicts_and_moves_clauses() {
        // An exporter solves a hard unsat instance, filling the pool; an
        // importer over the same variables then solves it again, pulling
        // the exports in.  Both verdicts must match the pool-free solve.
        let pool = Arc::new(ClausePool::new(4));
        let mut exporter = Solver::new();
        exporter.attach_pool(pool.clone());
        pigeonhole(&mut exporter, 5);
        assert_eq!(exporter.solve(&[]), SatResult::Unsat);
        assert!(pool.exported() > 0, "no clause met the glue bound");
        assert_eq!(pool.imported(), 0, "exporter re-imported its own work");

        let mut importer = Solver::new();
        importer.attach_pool(pool.clone());
        pigeonhole(&mut importer, 5);
        assert_eq!(importer.solve(&[]), SatResult::Unsat);
        assert!(pool.imported() > 0, "importer never attached a clause");

        // A satisfiable query over the same pool stays satisfiable.
        let pool = Arc::new(ClausePool::new(4));
        let mut first = Solver::new();
        first.attach_pool(pool.clone());
        random_3sat(&mut first, 7, 12, 30);
        let verdict = first.solve(&[]);
        let mut second = Solver::new();
        second.attach_pool(pool);
        random_3sat(&mut second, 7, 12, 30);
        assert_eq!(second.solve(&[]), verdict);
    }

    #[test]
    fn pooled_clauses_are_implied_by_the_exporting_instance() {
        // Every pooled clause C must be a consequence of the exporter's
        // clause database: asserting ¬C as assumptions must be Unsat on a
        // fresh solver over the same instance.
        for seed in 1..8u64 {
            let pool = Arc::new(ClausePool::new(4));
            let mut exporter = Solver::new();
            exporter.attach_pool(pool.clone());
            random_3sat(&mut exporter, seed, 12, 51);
            let _ = exporter.solve(&[]);
            for (clause, _) in pool.snapshot() {
                let mut checker = Solver::new();
                random_3sat(&mut checker, seed, 12, 51);
                let negated: Vec<SatLit> = clause.iter().map(|l| l.negate()).collect();
                assert_eq!(
                    checker.solve(&negated),
                    SatResult::Unsat,
                    "seed {seed}: pooled clause {clause:?} is not implied"
                );
            }
        }
    }

    #[test]
    fn cancelled_solver_exports_nothing() {
        // A racer whose interrupt fired before (or during) its turn must
        // not publish clauses: cancellation latches immediately, and both
        // the entry poll and the per-learn export gate observe it.
        let cancel = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let interrupt = crate::interrupt::Interrupt::new(None, None, Some(cancel));
        let pool = Arc::new(ClausePool::new(u32::MAX));
        let mut s = Solver::new();
        s.set_interrupt(interrupt);
        s.attach_pool(pool.clone());
        pigeonhole(&mut s, 5);
        assert_eq!(s.solve(&[]), SatResult::Interrupted);
        assert_eq!(pool.exported(), 0, "cancelled solver published clauses");
    }

    #[test]
    fn phase_and_activity_seeding_steer_decisions() {
        // With no constraints the first decision on a variable follows its
        // saved phase, and boosted variables are decided first.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.set_phase(a, true);
        s.set_phase(b, false);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(false));

        // b outranks a after a boost: the clause (¬a | ¬b) then assigns b
        // first (true via its seeded phase) and propagates ¬a.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.set_phase(a, true);
        s.set_phase(b, true);
        s.boost_activity(b, 10.0);
        s.add_clause(&[SatLit::neg(a), SatLit::neg(b)]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(s.value(a), Some(false));
    }

    #[test]
    fn random_3sat_instances_agree_with_brute_force() {
        // Small random instances cross-checked against exhaustive enumeration.
        let mut seed: u64 = 0x12345678;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let num_vars = 6;
            let num_clauses = 18;
            let clauses: Vec<Vec<SatLit>> = (0..num_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = (next() % num_vars as u64) as usize;
                            SatLit::new(v, next() % 2 == 0)
                        })
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            'outer: for bits in 0..(1u32 << num_vars) {
                for clause in &clauses {
                    let ok = clause.iter().any(|l| {
                        let val = (bits >> l.var()) & 1 == 1;
                        if l.is_positive() {
                            val
                        } else {
                            !val
                        }
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            for _ in 0..num_vars {
                s.new_var();
            }
            for clause in &clauses {
                s.add_clause(clause);
            }
            let result = s.solve(&[]);
            assert_eq!(
                result == SatResult::Sat,
                brute_sat,
                "solver disagrees with brute force on {clauses:?}"
            );
            if result == SatResult::Sat {
                // Verify the model actually satisfies every clause.
                for clause in &clauses {
                    assert!(clause.iter().any(|l| {
                        let val = s.value(l.var()).unwrap_or(false);
                        if l.is_positive() {
                            val
                        } else {
                            !val
                        }
                    }));
                }
            }
        }
    }
}
