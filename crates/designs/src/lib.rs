//! `autosva-designs` — the RTL design corpus used to reproduce the AutoSVA
//! paper's evaluation (Table III).
//!
//! Each entry is a simplified but behaviourally faithful model of one of the
//! seven control-critical modules the paper verifies in Ariane and OpenPiton.
//! Designs that the paper reports bugs for carry a `BUGGY` parameter: with
//! `BUGGY = 1` (the default) the module exhibits the reported defect, with
//! `BUGGY = 0` it contains the fix.  The AutoSVA annotations are embedded in
//! the interface-declaration section of every file, exactly as a designer
//! would write them.
//!
//! # Examples
//!
//! ```
//! use autosva_designs::{all_cases, by_id, Variant};
//!
//! assert_eq!(all_cases().len(), 7);
//! let mmu = by_id("A3").expect("MMU case exists");
//! assert_eq!(mmu.module, "mmu");
//! assert_eq!(mmu.params(Variant::Fixed), vec![("BUGGY".to_string(), 0)]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use autosva_formal::elab::{elaborate, ElabDesign, ElabOptions};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The open-source project a design comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Project {
    /// The 64-bit RISC-V Ariane (CVA6) core.
    Ariane,
    /// The OpenPiton manycore framework.
    OpenPiton,
}

impl std::fmt::Display for Project {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Project::Ariane => "Ariane",
            Project::OpenPiton => "OpenPiton",
        })
    }
}

/// Which variant of a design to elaborate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The design with the reported bug present (`BUGGY = 1`).
    Buggy,
    /// The design with the bug fixed (`BUGGY = 0`).
    Fixed,
}

/// The outcome the paper reports for a module (Table III), used by the
/// benchmark harness to compare against what the bundled engine finds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperOutcome {
    /// 100% of the liveness/safety properties were proven.
    FullProof,
    /// A new bug was found and, once fixed, everything proved.
    BugFoundThenProof,
    /// A previously reported (known) bug was hit.
    KnownBugHit,
    /// Some properties proved while others produced counterexamples that
    /// need extra designer assumptions.
    PartialWithCex,
}

/// One design of the evaluation corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignCase {
    /// Paper identifier (`A1`..`A5`, `O1`, `O2`).
    pub id: &'static str,
    /// Top module name.
    pub module: &'static str,
    /// Human-readable title as used in Table III.
    pub title: &'static str,
    /// Source project.
    pub project: Project,
    /// Annotated SystemVerilog source.
    pub source: &'static str,
    /// `true` when the module has a `BUGGY` parameter with a fixed variant.
    pub has_bug_parameter: bool,
    /// The outcome reported in Table III of the paper.
    pub paper_outcome: PaperOutcome,
    /// The literal Table III result text.
    pub paper_result: &'static str,
    /// Designer-added environment assumptions (SystemVerilog Boolean
    /// expressions over the interface) required to remove unrealistic
    /// counterexamples, as described in the paper's evaluation narrative.
    pub extra_assumptions: &'static [&'static str],
}

impl DesignCase {
    /// Parameter overrides selecting the requested variant.
    ///
    /// Designs without a `BUGGY` parameter return an empty list for either
    /// variant.
    pub fn params(&self, variant: Variant) -> Vec<(String, u128)> {
        if !self.has_bug_parameter {
            return Vec::new();
        }
        let value = match variant {
            Variant::Buggy => 1,
            Variant::Fixed => 0,
        };
        vec![("BUGGY".to_string(), value)]
    }

    /// `true` when the paper's headline result for this module is a proof
    /// (possibly after fixing a bug).
    pub fn proves_when_fixed(&self) -> bool {
        matches!(
            self.paper_outcome,
            PaperOutcome::FullProof | PaperOutcome::BugFoundThenProof
        )
    }

    /// Elaboration options selecting this design's top module and variant
    /// parameters (the corpus uses the default `clk_i`/`rst_ni` pins).
    pub fn elab_options(&self, variant: Variant) -> ElabOptions {
        ElabOptions {
            top: Some(self.module.to_string()),
            params: self.params(variant),
            ..ElabOptions::default()
        }
    }
}

/// Process-wide cache of elaborated corpus designs, keyed by paper id and
/// variant.
///
/// Elaboration is deterministic and the sources are compiled into the
/// binary, so every integration test (and every property of a multi-property
/// run) can share one [`ElabDesign`] instead of re-parsing and re-lowering
/// the RTL — the Table III suite is SAT-bound, not elaboration-bound, but
/// under the debug test profile the savings are still measurable.
type ElabCacheMap = HashMap<(&'static str, Variant), Arc<ElabDesign>>;

static ELAB_CACHE: OnceLock<Mutex<ElabCacheMap>> = OnceLock::new();

/// Returns the elaborated AIG model of a corpus design, cached across calls
/// (and across test threads) for the lifetime of the process.
///
/// # Panics
///
/// Panics if the bundled source fails to parse or elaborate; the corpus
/// sources are covered by this crate's own tests, so that indicates an
/// internal inconsistency.
pub fn elaborated(case: &DesignCase, variant: Variant) -> Arc<ElabDesign> {
    let cache = ELAB_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // A panicking elaboration (bad corpus source) inserts nothing, so a
    // poisoned lock leaves the map consistent — recover it rather than
    // masking the original panic for every later caller.
    let mut map = cache
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    map.entry((case.id, variant))
        .or_insert_with(|| {
            let file = svparse::parse(case.source)
                .unwrap_or_else(|e| panic!("{}: parse error: {}", case.id, e.render(case.source)));
            let design = elaborate(&file, &case.elab_options(variant))
                .unwrap_or_else(|e| panic!("{}: elaboration error: {e}", case.id));
            Arc::new(design)
        })
        .clone()
}

/// Annotated RTL source of the simplified Ariane page-table walker.
pub const PTW_SV: &str = include_str!("../rtl/ptw.sv");
/// Annotated RTL source of the simplified Ariane TLB.
pub const TLB_SV: &str = include_str!("../rtl/tlb.sv");
/// Annotated RTL source of the simplified Ariane MMU (ghost-response bug).
pub const MMU_SV: &str = include_str!("../rtl/mmu.sv");
/// Annotated RTL source of the simplified Ariane LSU load path (known bug).
pub const LSU_SV: &str = include_str!("../rtl/lsu.sv");
/// Annotated RTL source of the simplified Ariane L1-I$ controller (known bug).
pub const ICACHE_SV: &str = include_str!("../rtl/icache.sv");
/// Annotated RTL source of the OpenPiton NoC buffer (deadlock bug).
pub const NOC_BUFFER_SV: &str = include_str!("../rtl/noc_buffer.sv");
/// Annotated RTL source of the OpenPiton L1.5 miss path.
pub const L15_SV: &str = include_str!("../rtl/l15.sv");
/// Annotated RTL source of the struct-port FU/LSU request demo (S1): the
/// paper's Fig. 3 annotation style against a packed-struct port
/// (`fu_data_i.fu == LOAD`), exercising the struct-aware front end.
pub const FU_REQ_SV: &str = include_str!("../rtl/fu_req.sv");
/// Hand-flattened twin of [`FU_REQ_SV`]: same module name, ports and logic,
/// with every struct member access replaced by its explicit bit slice.  The
/// two must verify to byte-identical reports.
pub const FU_REQ_FLAT_SV: &str = include_str!("../rtl/fu_req_flat.sv");

/// The struct-port demo design and its hand-flattened twin, as
/// `(label, top module, source)` entries.  They are not part of the Table III
/// corpus ([`all_cases`] stays at seven entries) but are covered by the
/// front-end smoke and the struct/flat differential tests.
pub fn struct_demo_sources() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("S1-struct", "fu_req", FU_REQ_SV),
        ("S1-flat", "fu_req", FU_REQ_FLAT_SV),
    ]
}

/// Deliberately suspicious RTL that seeds one finding for every design-lint
/// code.  Not part of the Table III corpus ([`all_cases`] stays at seven
/// entries); the golden-diagnostics snapshot in `crates/designs/golden/`
/// pins the exact report the lint engine produces for it.
pub const LINT_DEMO_SV: &str = include_str!("../rtl/lint_demo.sv");

/// The lint demo as a `(label, top module, source)` entry, mirroring
/// [`struct_demo_sources`].
pub fn lint_demo_source() -> (&'static str, &'static str, &'static str) {
    ("lint-demo", "lint_demo", LINT_DEMO_SV)
}

/// The assumption the paper adds to the MMU testbench to remove the
/// DTLB-over-ITLB starvation counterexample ("one instruction cannot do many
/// DTLB lookups"): the LSU does not issue translation requests while an ITLB
/// miss is waiting for the walker.
pub const MMU_NO_STARVATION_ASSUMPTION: &str = "!(lsu_req_i && itlb_access_i && itlb_miss_i)";

/// All seven evaluated modules, in Table III order.
pub fn all_cases() -> Vec<DesignCase> {
    vec![
        DesignCase {
            id: "A1",
            module: "ptw",
            title: "Page Table Walker (PTW)",
            project: Project::Ariane,
            source: PTW_SV,
            has_bug_parameter: false,
            paper_outcome: PaperOutcome::FullProof,
            paper_result: "100% liveness/safety properties proof",
            extra_assumptions: &[],
        },
        DesignCase {
            id: "A2",
            module: "tlb",
            title: "Trans. Look. Buffer (TLB)",
            project: Project::Ariane,
            source: TLB_SV,
            has_bug_parameter: false,
            paper_outcome: PaperOutcome::FullProof,
            paper_result: "100% liveness/safety properties proof",
            extra_assumptions: &[],
        },
        DesignCase {
            id: "A3",
            module: "mmu",
            title: "Memory Mgmt. Unit (MMU)",
            project: Project::Ariane,
            source: MMU_SV,
            has_bug_parameter: true,
            paper_outcome: PaperOutcome::BugFoundThenProof,
            paper_result: "Bug found and fixed -> 100% proof",
            extra_assumptions: &[MMU_NO_STARVATION_ASSUMPTION],
        },
        DesignCase {
            id: "A4",
            module: "lsu",
            title: "Load Store Unit (LSU)",
            project: Project::Ariane,
            source: LSU_SV,
            has_bug_parameter: true,
            paper_outcome: PaperOutcome::KnownBugHit,
            paper_result: "Hit known bug (issue #538)",
            extra_assumptions: &[],
        },
        DesignCase {
            id: "A5",
            module: "icache",
            title: "L1-I$ (write-back)",
            project: Project::Ariane,
            source: ICACHE_SV,
            has_bug_parameter: true,
            paper_outcome: PaperOutcome::KnownBugHit,
            paper_result: "Hit known bug (issue #474)",
            extra_assumptions: &[],
        },
        DesignCase {
            id: "O1",
            module: "noc_buffer",
            title: "NoC Buffer",
            project: Project::OpenPiton,
            source: NOC_BUFFER_SV,
            has_bug_parameter: true,
            paper_outcome: PaperOutcome::BugFoundThenProof,
            paper_result: "Bug found and fixed -> 100% proof",
            extra_assumptions: &[],
        },
        DesignCase {
            id: "O2",
            module: "l15",
            title: "L1.5$ (private)",
            project: Project::OpenPiton,
            source: L15_SV,
            has_bug_parameter: false,
            paper_outcome: PaperOutcome::PartialWithCex,
            paper_result: "NoC Buffer proof, other CEXs",
            extra_assumptions: &[],
        },
    ]
}

/// Looks up a design case by its paper identifier (`A1`..`A5`, `O1`, `O2`).
pub fn by_id(id: &str) -> Option<DesignCase> {
    all_cases().into_iter().find(|c| c.id == id)
}

/// Looks up a design case by its top-module name.
pub fn by_module(module: &str) -> Option<DesignCase> {
    all_cases().into_iter().find(|c| c.module == module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_seven_modules() {
        let cases = all_cases();
        assert_eq!(cases.len(), 7);
        let ids: Vec<&str> = cases.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec!["A1", "A2", "A3", "A4", "A5", "O1", "O2"]);
        assert_eq!(
            cases
                .iter()
                .filter(|c| c.project == Project::Ariane)
                .count(),
            5
        );
        assert_eq!(
            cases
                .iter()
                .filter(|c| c.project == Project::OpenPiton)
                .count(),
            2
        );
    }

    #[test]
    fn lookup_by_id_and_module() {
        assert_eq!(by_id("O1").unwrap().module, "noc_buffer");
        assert_eq!(by_module("mmu").unwrap().id, "A3");
        assert!(by_id("Z9").is_none());
        assert!(by_module("missing").is_none());
    }

    #[test]
    fn variant_parameters() {
        let mmu = by_id("A3").unwrap();
        assert_eq!(mmu.params(Variant::Buggy), vec![("BUGGY".to_string(), 1)]);
        assert_eq!(mmu.params(Variant::Fixed), vec![("BUGGY".to_string(), 0)]);
        let ptw = by_id("A1").unwrap();
        assert!(ptw.params(Variant::Buggy).is_empty());
        assert!(ptw.params(Variant::Fixed).is_empty());
    }

    #[test]
    fn every_source_parses_and_contains_annotations() {
        for case in all_cases() {
            let file = svparse::parse(case.source)
                .unwrap_or_else(|e| panic!("{}: parse error: {}", case.id, e.render(case.source)));
            assert!(
                file.module(case.module).is_some(),
                "{}: module `{}` missing",
                case.id,
                case.module
            );
            assert!(
                case.source.contains("AUTOSVA"),
                "{}: missing AutoSVA annotations",
                case.id
            );
        }
    }

    #[test]
    fn bug_parameters_only_on_buggy_designs() {
        for case in all_cases() {
            assert_eq!(
                case.has_bug_parameter,
                case.source.contains("parameter BUGGY"),
                "{}: BUGGY parameter flag mismatch",
                case.id
            );
        }
    }

    #[test]
    fn paper_outcomes_match_expectations() {
        assert_eq!(by_id("A1").unwrap().paper_outcome, PaperOutcome::FullProof);
        assert_eq!(
            by_id("A3").unwrap().paper_outcome,
            PaperOutcome::BugFoundThenProof
        );
        assert_eq!(
            by_id("A4").unwrap().paper_outcome,
            PaperOutcome::KnownBugHit
        );
        assert_eq!(
            by_id("O2").unwrap().paper_outcome,
            PaperOutcome::PartialWithCex
        );
        assert!(by_id("A1").unwrap().proves_when_fixed());
        assert!(!by_id("A4").unwrap().proves_when_fixed());
    }

    #[test]
    fn elaboration_cache_returns_shared_designs() {
        let case = by_id("O1").unwrap();
        let first = elaborated(&case, Variant::Fixed);
        let second = elaborated(&case, Variant::Fixed);
        assert!(
            Arc::ptr_eq(&first, &second),
            "repeated elaborations must share one cached design"
        );
        // Variants elaborate differently and are cached separately.
        let buggy = elaborated(&case, Variant::Buggy);
        assert!(!Arc::ptr_eq(&first, &buggy));
        assert_eq!(first.top, "noc_buffer");
        assert!(first.aig.num_latches() > 0);
    }

    #[test]
    fn l15_carries_the_scaled_miss_counter() {
        // The O2 model must sit past the explicit engine's enumeration
        // cliff: ≥ 24 latches of design state, most of them the free-running
        // miss counter that only PDR can reason about efficiently.
        let case = by_id("O2").unwrap();
        let design = elaborated(&case, Variant::Fixed);
        assert!(
            design.aig.num_latches() >= 24,
            "expected ≥ 24 latches, got {}",
            design.aig.num_latches()
        );
        assert!(design.signal("miss_cnt_q").is_some());
        assert_eq!(design.width("miss_cnt_q"), Some(20));
    }

    #[test]
    fn struct_demo_and_flat_twin_share_interface() {
        let sources = struct_demo_sources();
        assert_eq!(sources.len(), 2);
        for (label, top, source) in &sources {
            let file = svparse::parse(source)
                .unwrap_or_else(|e| panic!("{label}: parse error: {}", e.render(source)));
            assert!(
                file.module(top).is_some(),
                "{label}: module `{top}` missing"
            );
            assert!(source.contains("AUTOSVA"), "{label}: missing annotations");
        }
        // The struct design carries the paper-style member-access annotation;
        // the twin spells the same condition as an explicit bit slice.
        assert!(FU_REQ_SV.contains("fu_data_i.fu == LOAD"));
        assert!(FU_REQ_FLAT_SV.contains("fu_data_i[1:0] == 2'd1"));
        // Both elaborate to the same model shape.
        let shapes: Vec<(usize, usize)> = sources
            .iter()
            .map(|(label, top, source)| {
                let file = svparse::parse(source).unwrap();
                let design = elaborate(
                    &file,
                    &ElabOptions {
                        top: Some(top.to_string()),
                        ..ElabOptions::default()
                    },
                )
                .unwrap_or_else(|e| panic!("{label}: elaboration error: {e}"));
                (design.aig.num_inputs(), design.aig.num_latches())
            })
            .collect();
        assert_eq!(shapes[0], shapes[1]);
    }

    #[test]
    fn l15_staging_push_is_gated_on_the_buffer_ready_output() {
        // The PR 1 registered-push workaround is gone: the push strobe is
        // combinationally gated on the instance's ready output.
        let src = by_id("O2").unwrap().source;
        assert!(src.contains("wire stage_push = busy_q && !pushed_q && stage_rdy;"));
        assert!(!src.contains("stage_push && stage_rdy"));
    }

    #[test]
    fn mmu_carries_the_starvation_assumption() {
        let mmu = by_id("A3").unwrap();
        assert_eq!(mmu.extra_assumptions.len(), 1);
        assert!(mmu.extra_assumptions[0].contains("itlb"));
        // The assumption must be a valid expression over the interface.
        assert!(svparse::parse_expr(mmu.extra_assumptions[0]).is_ok());
    }

    #[test]
    fn noc_buffer_annotation_is_three_lines() {
        // The paper highlights that the Mem Engine NoC-buffer testbench was
        // generated from just 3 lines of annotations.
        let src = by_id("O1").unwrap().source;
        let start = src.find("/*AUTOSVA").unwrap();
        let end = src[start..].find("*/").unwrap();
        let block = &src[start..start + end];
        let lines = block
            .lines()
            .skip(1)
            .filter(|l| !l.trim().is_empty())
            .count();
        assert_eq!(lines, 3);
    }
}
