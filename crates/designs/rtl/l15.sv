// O2 — OpenPiton private L1.5 cache miss path.
//
// A miss request from the core is staged through an embedded (fixed)
// one-entry NoC buffer, issued to the NoC, and returned to the core when
// the NoC delivers a fill return.  The return-message *type* is
// intentionally under-constrained — exactly the situation the paper
// describes for this module ("NoC Buffer proof, other CEXs"): the NoC side
// and the response-had-a-request safety property prove, while the
// miss-to-fill liveness properties show counterexamples in which the
// environment keeps answering with a non-fill message type.
/*AUTOSVA
l15_miss: l15_req -in> l15_ret
l15_noc: noc_req -out> noc_res
*/
module l15 (
  input  logic       clk_i,
  input  logic       rst_ni,
  // Core miss interface (l15_miss transaction).
  input  logic       l15_req_val,
  output logic       l15_req_ack,
  input  logic [0:0] l15_req_transid,
  output logic       l15_ret_val,
  output logic [0:0] l15_ret_transid,
  // NoC interface (l15_noc transaction).
  output logic       noc_req_val,
  input  logic       noc_req_ack,
  output logic [0:0] noc_req_transid,
  input  logic       noc_res_val,
  input  logic [0:0] noc_res_transid,
  input  logic [0:0] noc_res_rtntype_i
);

  logic        busy_q;
  logic        pushed_q;
  logic [0:0]  id_q;
  logic        stage_rdy;
  // Free-running accumulated-miss statistics counter (the L1.5 exposes such
  // CSR counters to software).  Its 20 bits push the compiled model far past
  // the explicit-state engine's enumeration cliff — every counter value is
  // reachable — so the `had_a_request` proof must close via PDR, whose
  // invariant simply never mentions these latches.
  logic [19:0] miss_cnt_q;

  wire hsk = l15_req_val && l15_req_ack;
  // Only a fill return (type 01) completes the miss; other return types are
  // dropped, and nothing forces the environment to ever send a fill.
  wire fill = noc_res_val && noc_res_rtntype_i == 1'b1;
  // The pending miss is offered to the staging buffer whenever the buffer is
  // ready — the natural handshake: the push strobe is gated on the buffer's
  // *ready output* in the same cycle.  This is a combinational path into and
  // back out of the `noc_stage` instance (push_rdy_o depends only on the
  // buffer's own state, never on push_val_i), which an instance-atomic
  // elaborator misreports as a combinational cycle; per-output instance
  // elaboration resolves it.  (PR 1 worked around the false cycle by keeping
  // the strobe off the ready signal and qualifying the register update
  // instead.)
  wire stage_push = busy_q && !pushed_q && stage_rdy;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q     <= 1'b0;
      pushed_q   <= 1'b0;
      id_q       <= 1'b0;
      miss_cnt_q <= 20'd0;
    end else begin
      if (hsk) begin
        busy_q     <= 1'b1;
        pushed_q   <= 1'b0;
        id_q       <= l15_req_transid;
        miss_cnt_q <= miss_cnt_q + 20'd1;
      end else begin
        if (stage_push) begin
          pushed_q <= 1'b1;
        end
        if (busy_q && fill) begin
          busy_q <= 1'b0;
        end
      end
    end
  end

  // The embedded (fixed) NoC buffer stages the outgoing miss.
  noc_stage u_noc_stage (
    .clk_i      (clk_i),
    .rst_ni     (rst_ni),
    .push_val_i (stage_push),
    .push_id_i  (id_q),
    .push_rdy_o (stage_rdy),
    .noc_val_o  (noc_req_val),
    .noc_id_o   (noc_req_transid),
    .noc_gnt_i  (noc_req_ack)
  );

  assign l15_req_ack     = !busy_q;
  assign l15_ret_val     = busy_q && fill;
  assign l15_ret_transid = id_q;

endmodule

// One-entry skid buffer between the miss path and the NoC port — the
// "NoC buffer" embedded in the L1.5, carrying the paper's fix (no push is
// accepted while an entry is pending).
module noc_stage (
  input  logic       clk_i,
  input  logic       rst_ni,
  input  logic       push_val_i,
  input  logic [0:0] push_id_i,
  output logic       push_rdy_o,
  output logic       noc_val_o,
  output logic [0:0] noc_id_o,
  input  logic       noc_gnt_i
);

  logic       vld_q;
  logic [0:0] id_q;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      vld_q <= 1'b0;
      id_q  <= 1'b0;
    end else begin
      if (push_val_i && push_rdy_o) begin
        vld_q <= 1'b1;
        id_q  <= push_id_i;
      end else if (vld_q && noc_gnt_i) begin
        vld_q <= 1'b0;
      end
    end
  end

  assign push_rdy_o = !vld_q;
  assign noc_val_o  = vld_q;
  assign noc_id_o   = id_q;

endmodule
