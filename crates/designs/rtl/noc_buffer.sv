// O1 — OpenPiton memory-engine NoC buffer.
//
// The paper highlights this module: a complete formal testbench generated
// from just three annotation lines (the transaction relation plus the two
// MSHR-ID mappings; the val/ack attributes are picked up implicitly from
// the port names).  The buffer is a two-entry FIFO carrying the MSHR ID of
// each request from the push side to the NoC side.
//
// `BUGGY = 1` reproduces Bug2: the buffer asserts ready even when full, so
// a third in-flight request silently overflows and is lost — its response
// never appears and the eventual-response liveness property yields the
// deadlock counterexample.  `BUGGY = 0` applies the paper's fix (ready only
// when not full) and the full property set proves.
/*AUTOSVA
noc_txn: noc1buffer_req -in> noc1buffer_res
[1:0] noc1buffer_req_transid = noc1buffer_req_mshrid
[1:0] noc1buffer_res_transid = noc1buffer_res_mshrid
*/
module noc_buffer #(
  parameter BUGGY = 1
) (
  input  logic       clk_i,
  input  logic       rst_ni,
  input  logic       noc1buffer_req_val,
  output logic       noc1buffer_req_ack,
  input  logic [1:0] noc1buffer_req_mshrid,
  output logic       noc1buffer_res_val,
  input  logic       noc1buffer_res_ack,
  output logic [1:0] noc1buffer_res_mshrid
);

  logic [1:0] mem0_q;
  logic [1:0] mem1_q;
  logic [1:0] cnt_q;

  // The bug: ready is unconditional, so a push into a full buffer is lost.
  assign noc1buffer_req_ack = BUGGY == 1 ? 1'b1 : cnt_q < 2'd2;

  wire push = noc1buffer_req_val && noc1buffer_req_ack;
  wire pop  = noc1buffer_res_val && noc1buffer_res_ack;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      mem0_q <= 2'b0;
      mem1_q <= 2'b0;
      cnt_q  <= 2'b0;
    end else begin
      if (push && pop) begin
        if (cnt_q == 2'd1) begin
          mem0_q <= noc1buffer_req_mshrid;
        end else if (cnt_q == 2'd2) begin
          mem0_q <= mem1_q;
          mem1_q <= noc1buffer_req_mshrid;
        end
      end else if (push) begin
        if (cnt_q == 2'd0) begin
          mem0_q <= noc1buffer_req_mshrid;
        end else if (cnt_q == 2'd1) begin
          mem1_q <= noc1buffer_req_mshrid;
        end
        // A push at cnt_q == 2 overflows: the entry is dropped (the bug).
        if (cnt_q != 2'd2) begin
          cnt_q <= cnt_q + 2'd1;
        end
      end else if (pop) begin
        mem0_q <= mem1_q;
        cnt_q  <= cnt_q - 2'd1;
      end
    end
  end

  assign noc1buffer_res_val    = cnt_q != 2'd0;
  assign noc1buffer_res_mshrid = mem0_q;

endmodule
