// A4 — simplified Ariane load-store unit (LSU) load path.
//
// The annotation block mirrors Fig. 3 of the paper, adapted to the flat
// signal names of this simplified model (the original indexes struct fields
// of `fu_data_i`).  A tagged load is accepted when the unit is idle and the
// result returns one cycle later carrying the same transaction ID.
//
// `BUGGY = 1` reproduces the known Ariane bug (issue #538) the paper's LSU
// testbench hits: an exception raised while the load is in flight kills the
// transaction, so the response never appears and the eventual-response
// liveness property produces a counterexample.  With `BUGGY = 0` the
// in-flight load always completes and the full property set proves.
/*AUTOSVA
lsu_load: lsu_req -in> lsu_res
lsu_req_val = lsu_valid_i
lsu_req_rdy = lsu_ready_o
[1:0] lsu_req_transid = lsu_trans_id_i
[1:0] lsu_req_stable = lsu_trans_id_i
lsu_req_transid_unique = 1'b1
*/
module lsu #(
  parameter BUGGY = 1
) (
  input  logic       clk_i,
  input  logic       rst_ni,
  input  logic       lsu_valid_i,
  output logic       lsu_ready_o,
  input  logic [1:0] lsu_trans_id_i,
  input  logic       exception_i,
  output logic       lsu_res_val,
  output logic [1:0] lsu_res_transid
);

  logic       busy_q;
  logic [1:0] id_q;

  wire hsk = lsu_valid_i && lsu_ready_o;
  // The bug: a later exception flushes the in-flight load.
  wire kill = BUGGY == 1 && exception_i;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q   <= 2'b0;
    end else begin
      if (hsk) begin
        busy_q <= 1'b1;
        id_q   <= lsu_trans_id_i;
      end else begin
        busy_q <= 1'b0;
      end
    end
  end

  assign lsu_ready_o     = !busy_q;
  assign lsu_res_val     = busy_q && !kill;
  assign lsu_res_transid = id_q;

endmodule
