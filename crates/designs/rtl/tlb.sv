// A2 — simplified Ariane translation lookaside buffer (TLB).
//
// A single-outstanding lookup pipeline: a tagged request is accepted when
// the TLB is idle and answered one cycle later.  The lookup payload is
// carried through the pipeline and returned with the response, which lets
// the generated data-integrity property check the datapath end to end (the
// simplified "translation" is an identity mapping).
//
// The paper reports a 100% liveness/safety proof for this module.
/*AUTOSVA
tlb_lookup: tlb_req -in> tlb_res
tlb_req_active = tlb_busy_o
tlb_req_transid_unique = 1'b1
[3:0] tlb_req_stable = tlb_req_data
*/
module tlb (
  input  logic       clk_i,
  input  logic       rst_ni,
  input  logic       tlb_req_val,
  output logic       tlb_req_ack,
  input  logic [1:0] tlb_req_transid,
  input  logic [3:0] tlb_req_data,
  output logic       tlb_res_val,
  output logic [1:0] tlb_res_transid,
  output logic [3:0] tlb_res_data,
  output logic       tlb_busy_o
);

  logic       busy_q;
  logic [1:0] id_q;
  logic [3:0] data_q;

  wire hsk = tlb_req_val && tlb_req_ack;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q   <= 2'b0;
      data_q <= 4'b0;
    end else begin
      if (hsk) begin
        busy_q <= 1'b1;
        id_q   <= tlb_req_transid;
        data_q <= tlb_req_data;
      end else begin
        busy_q <= 1'b0;
      end
    end
  end

  assign tlb_req_ack     = !busy_q;
  assign tlb_res_val     = busy_q;
  assign tlb_res_transid = id_q;
  assign tlb_res_data    = data_q;
  assign tlb_busy_o      = busy_q;

endmodule
