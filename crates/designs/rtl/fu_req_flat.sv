// Hand-flattened twin of fu_req.sv.
//
// The `fu_data_t` struct port is replaced by a flat 5-bit vector and every
// member access by the equivalent explicit bit slice (`fu` occupies bits
// [1:0], `trans_id` bits [4:2] — packed structs place the first-declared
// field at the MSB end).  The module name, port names, annotation block and
// logic structure are otherwise identical, so the struct-aware front end
// must produce a byte-identical verification report for both files; the
// differential tests pin that equivalence.
/*AUTOSVA
fu_load: lsu_req -in> lsu_res
lsu_req_val = lsu_valid_i && fu_data_i[1:0] == 2'd1
lsu_req_rdy = lsu_ready_o
[2:0] lsu_req_transid = fu_data_i[4:2]
lsu_res_val = load_valid_o
[2:0] lsu_res_transid = load_trans_id_o
*/
module fu_req (
  input  logic       clk_i,
  input  logic       rst_ni,
  input  logic       lsu_valid_i,
  input  logic [4:0] fu_data_i,
  output logic       lsu_ready_o,
  output logic       load_valid_o,
  output logic [2:0] load_trans_id_o
);

  logic       busy_q;
  logic [2:0] id_q;

  wire load_req = lsu_valid_i && fu_data_i[1:0] == 2'd1;
  wire hsk      = load_req && lsu_ready_o;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q   <= 3'b0;
    end else begin
      if (hsk) begin
        busy_q <= 1'b1;
        id_q   <= fu_data_i[4:2];
      end else begin
        busy_q <= 1'b0;
      end
    end
  end

  assign lsu_ready_o     = !busy_q;
  assign load_valid_o    = busy_q;
  assign load_trans_id_o = id_q;

endmodule
