// Lint demonstration design: NOT part of the Table III corpus.
//
// Every block below seeds exactly one (or two, where noted) design-lint
// findings, and the golden-diagnostics test pins the full report — code,
// line, column and caret snippet — so the lint engine's output is locked
// down end to end.  The module still parses, elaborates and compiles: the
// lint findings are *warnings about legal-but-suspicious* code plus the
// one hard error (the multiply-driven `clash`).
//
// Seeded findings:
//   L001  `ghost` is read by `req_ack` but never driven
//   L002  `clash` is driven by two continuous assigns
//   L003  `scratch` (4 bits) is assigned a 2-bit literal
//   L004  `demo_txn_data_sampled` declared [3:0] samples the 2-bit `req_id`
//   L005  `stuck_q` provably never leaves its reset value
//   L006  `unused_cnt` is written but never read
//   L007  enum state `FAIL` is never referenced (unreachable)
//   L008  output `dbg_state` is not covered by any generated property
//   L009  annotation path `req.id` resolves to `req_id` by naming convention
/*AUTOSVA
demo_txn: req -in> res
[3:0] req_transid = req.id
[3:0] res_transid = res_id
[3:0] req_data = req_id
[3:0] res_data = res_id
*/
module lint_demo (
  input  logic       clk_i,
  input  logic       rst_ni,
  input  logic       req_val,
  output logic       req_ack,
  input  logic [1:0] req_id,
  output logic       res_val,
  input  logic       res_ack,
  output logic [3:0] res_id,
  output logic [1:0] dbg_state
);

  typedef enum logic [1:0] {IDLE, BUSY, DONE, FAIL} state_e;

  state_e     state_q;
  logic [3:0] scratch;
  logic [1:0] unused_cnt;
  logic       ghost;
  logic       clash;
  logic       stuck_q;

  // L002: `clash` has two whole-signal drivers; the second silently wins.
  assign clash = req_val;
  assign clash = !req_val;

  // L003: 4-bit target, explicitly 2-bit source.
  assign scratch = 2'd1;

  // L006: written here, read nowhere.
  assign unused_cnt = req_id;

  // L005: holds its reset value forever.
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      stuck_q <= 1'b0;
    end else begin
      stuck_q <= stuck_q;
    end
  end

  // The real state machine; `FAIL` is never assigned nor compared (L007).
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      state_q <= IDLE;
    end else begin
      case (state_q)
        IDLE:    if (req_val && req_ack) state_q <= BUSY;
        BUSY:    state_q <= DONE;
        DONE:    if (res_ack) state_q <= IDLE;
        default: state_q <= IDLE;
      endcase
    end
  end

  // L001: `ghost` gates the handshake but nothing drives it.
  assign req_ack = (state_q == IDLE) && ghost;
  assign res_val = (state_q == DONE);
  assign res_id  = {scratch[3:1], clash};

  // L008: no generated property ever reads this output.
  assign dbg_state = state_q;

endmodule
