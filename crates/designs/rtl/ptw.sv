// A1 — simplified Ariane page-table walker (PTW).
//
// Mirrors Fig. 7 of the paper: an incoming transaction from the DTLB (a miss
// triggers a walk that ends in a TLB update) and an outgoing transaction to
// the data cache (the walker fetches PTEs from memory).  The walk is a
// single memory round-trip; the "translation" is modelled as echoing the
// requested VPN back as the PTE payload, which is what the data-integrity
// property checks end to end.
//
// The paper reports a 100% liveness/safety proof for this module, so this
// model carries no bug parameter.
/*AUTOSVA
dtlb_ptw: dtlb -in> ptw_update
dtlb_active = ptw_active_o
dtlb_val = dtlb_access_i && dtlb_miss_i
dtlb_ack = !ptw_active_o
[1:0] dtlb_data = dtlb_vpn_i
ptw_update_val = ptw_update_valid_o
[1:0] ptw_update_data = ptw_pte_o
ptw_update_active = ptw_active_o
ptw_dcache: ptw_req -out> dcache_res
*/
module ptw (
  input  logic       clk_i,
  input  logic       rst_ni,
  // DTLB miss interface (request side of dtlb_ptw).
  input  logic       dtlb_access_i,
  input  logic       dtlb_miss_i,
  input  logic [1:0] dtlb_vpn_i,
  // Walk-result interface (response side of dtlb_ptw).
  output logic       ptw_active_o,
  output logic       ptw_update_valid_o,
  output logic [1:0] ptw_pte_o,
  // PTE fetch port towards the data cache (ptw_dcache transaction).
  output logic       ptw_req_val,
  input  logic       ptw_req_ack,
  input  logic       dcache_res_val
);

  logic       active_q;
  logic       sent_q;
  logic [1:0] vpn_q;

  wire dtlb_req = dtlb_access_i && dtlb_miss_i;
  wire dtlb_hsk = dtlb_req && !active_q;
  // The PTE response may arrive in the same cycle the request is granted.
  wire mem_got = dcache_res_val && (sent_q || (ptw_req_val && ptw_req_ack));

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      active_q <= 1'b0;
      sent_q   <= 1'b0;
      vpn_q    <= 2'b0;
    end else begin
      if (dtlb_hsk) begin
        active_q <= 1'b1;
        sent_q   <= 1'b0;
        vpn_q    <= dtlb_vpn_i;
      end else if (active_q && mem_got) begin
        active_q <= 1'b0;
        sent_q   <= 1'b0;
      end else if (active_q && ptw_req_val && ptw_req_ack) begin
        sent_q <= 1'b1;
      end
    end
  end

  assign ptw_active_o       = active_q;
  assign ptw_req_val        = active_q && !sent_q;
  assign ptw_update_valid_o = active_q && mem_got;
  assign ptw_pte_o          = vpn_q;

endmodule
