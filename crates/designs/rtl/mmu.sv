// A3 — simplified Ariane memory-management unit (MMU).
//
// The MMU arbitrates the page-table walker between DTLB misses (translation
// requests from the LSU) and ITLB misses (instruction fetches), giving the
// DTLB static priority exactly like the original design.  Two transactions
// are annotated: the LSU translation request/response pair and the ITLB
// fill.  A walk takes one cycle and echoes the virtual address as the
// physical one (identity translation), which the data-integrity property
// checks.
//
// `BUGGY = 1` reproduces Bug1 of the paper: a misaligned LSU access makes
// the MMU raise the LSU response valid without any request in flight — the
// "ghost response" found as a violation of the response-had-a-request
// safety property with a short trace.
//
// The DTLB static priority also yields the paper's DTLB-over-ITLB
// starvation counterexample: without the designer assumption
// `!(lsu_req_i && itlb_access_i && itlb_miss_i)` a stream of LSU requests
// keeps the ITLB miss waiting forever (see `MMU_NO_STARVATION_ASSUMPTION`).
/*AUTOSVA
mmu_lsu: lsu -in> lsu_rsp
lsu_val = lsu_req_i
[1:0] lsu_data = lsu_vaddr_i
[1:0] lsu_rsp_data = lsu_paddr_o
lsu_active = mmu_busy_o
itlb_fill: itlb -in> itlb_rsp
itlb_val = itlb_access_i && itlb_miss_i
*/
module mmu #(
  parameter BUGGY = 1
) (
  input  logic       clk_i,
  input  logic       rst_ni,
  // LSU translation interface (mmu_lsu transaction).
  input  logic       lsu_req_i,
  input  logic       lsu_misaligned_i,
  input  logic [1:0] lsu_vaddr_i,
  output logic       lsu_ack,
  output logic       lsu_rsp_val,
  output logic [1:0] lsu_paddr_o,
  // ITLB fill interface (itlb_fill transaction).
  input  logic       itlb_access_i,
  input  logic       itlb_miss_i,
  output logic       itlb_ack,
  output logic       itlb_rsp_val,
  // Walker status.
  output logic       mmu_busy_o
);

  logic       busy_q;
  logic       srv_itlb_q;
  logic [1:0] vaddr_q;

  wire itlb_req = itlb_access_i && itlb_miss_i;
  // Static priority: the DTLB (LSU) always wins arbitration.
  wire dtlb_gnt = !busy_q && lsu_req_i;
  wire itlb_gnt = !busy_q && !lsu_req_i && itlb_req;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q     <= 1'b0;
      srv_itlb_q <= 1'b0;
      vaddr_q    <= 2'b0;
    end else begin
      if (dtlb_gnt) begin
        busy_q     <= 1'b1;
        srv_itlb_q <= 1'b0;
        vaddr_q    <= lsu_vaddr_i;
      end else if (itlb_gnt) begin
        busy_q     <= 1'b1;
        srv_itlb_q <= 1'b1;
      end else begin
        busy_q <= 1'b0;
      end
    end
  end

  assign lsu_ack      = dtlb_gnt;
  assign itlb_ack     = itlb_gnt;
  assign mmu_busy_o   = busy_q && !srv_itlb_q;
  // Bug1 (ghost response): a misaligned access answers the LSU immediately,
  // even when no translation request was ever accepted.
  assign lsu_rsp_val  = (busy_q && !srv_itlb_q) || (BUGGY == 1 && lsu_misaligned_i);
  assign lsu_paddr_o  = vaddr_q;
  assign itlb_rsp_val = busy_q && srv_itlb_q;

endmodule
