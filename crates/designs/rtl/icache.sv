// A5 — simplified Ariane write-back L1 instruction cache controller.
//
// Every fetch misses in this scaled-down model: the controller forwards the
// request to memory (the outgoing `icache_refill` transaction) and returns
// the fill to the front end one round-trip later, tagged with the fetch ID.
//
// `BUGGY = 1` reproduces the known Ariane bug (issue #474) the paper's
// testbench hits: a flush arriving while the fetch is in flight drops the
// transaction — the refill is ignored and the fetch response never appears,
// violating the eventual-response liveness property.  With `BUGGY = 0` the
// in-flight fetch survives the flush and everything proves.
/*AUTOSVA
icache_fetch: fetch_req -in> fetch_res
icache_refill: mem_req -out> mem_res
*/
module icache #(
  parameter BUGGY = 1
) (
  input  logic       clk_i,
  input  logic       rst_ni,
  // Front-end fetch interface (icache_fetch transaction).
  input  logic       fetch_req_val,
  output logic       fetch_req_ack,
  input  logic [1:0] fetch_req_transid,
  input  logic       flush_i,
  output logic       fetch_res_val,
  output logic [1:0] fetch_res_transid,
  // Memory refill interface (icache_refill transaction).
  output logic       mem_req_val,
  input  logic       mem_req_ack,
  input  logic       mem_res_val
);

  logic       busy_q;
  logic       sent_q;
  logic [1:0] id_q;

  wire hsk  = fetch_req_val && fetch_req_ack;
  // The bug: a flush kills the in-flight fetch.
  wire kill = BUGGY == 1 && flush_i && busy_q;
  // The refill may arrive in the same cycle the memory request is granted.
  wire got  = mem_res_val && (sent_q || (mem_req_val && mem_req_ack));

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      sent_q <= 1'b0;
      id_q   <= 2'b0;
    end else if (kill) begin
      busy_q <= 1'b0;
      sent_q <= 1'b0;
    end else begin
      if (hsk) begin
        busy_q <= 1'b1;
        sent_q <= 1'b0;
        id_q   <= fetch_req_transid;
      end else if (busy_q && got) begin
        busy_q <= 1'b0;
        sent_q <= 1'b0;
      end else if (busy_q && mem_req_val && mem_req_ack) begin
        sent_q <= 1'b1;
      end
    end
  end

  assign fetch_req_ack     = !busy_q;
  assign mem_req_val       = busy_q && !sent_q;
  assign fetch_res_val     = busy_q && got && !kill;
  assign fetch_res_transid = id_q;

endmodule
