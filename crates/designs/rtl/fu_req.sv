// S1 — paper-style LSU/FU request with a packed-struct port.
//
// This is the annotation scenario of Fig. 3 of the paper in its *original*
// form: the request payload arrives as a `fu_data_t` packed struct defined
// in a package, and the annotations index its fields directly
// (`fu_data_i.fu == LOAD`).  The A4 corpus entry keeps the historical
// flattened-port adaptation; this design exercises the struct-aware front
// end end-to-end.  `fu_req_flat.sv` is the hand-flattened twin used by the
// differential front-end tests: both must compile to byte-identical models.
package fu_pkg;
  parameter TRANS_ID_BITS = 3;
  typedef enum logic [1:0] { FU_NONE, LOAD, STORE } fu_op_t;
  typedef struct packed {
    logic [TRANS_ID_BITS-1:0] trans_id;
    fu_op_t                   fu;
  } fu_data_t;
endpackage

/*AUTOSVA
fu_load: lsu_req -in> lsu_res
lsu_req_val = lsu_valid_i && fu_data_i.fu == LOAD
lsu_req_rdy = lsu_ready_o
[2:0] lsu_req_transid = fu_data_i.trans_id
lsu_res_val = load_valid_o
[2:0] lsu_res_transid = load_trans_id_o
*/
module fu_req import fu_pkg::*; (
  input  logic             clk_i,
  input  logic             rst_ni,
  input  logic             lsu_valid_i,
  input  fu_pkg::fu_data_t fu_data_i,
  output logic             lsu_ready_o,
  output logic             load_valid_o,
  output logic [2:0]       load_trans_id_o
);

  logic       busy_q;
  logic [2:0] id_q;

  wire load_req = lsu_valid_i && fu_data_i.fu == LOAD;
  wire hsk      = load_req && lsu_ready_o;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q   <= 3'b0;
    end else begin
      if (hsk) begin
        busy_q <= 1'b1;
        id_q   <= fu_data_i.trans_id;
      end else begin
        busy_q <= 1'b0;
      end
    end
  end

  assign lsu_ready_o     = !busy_q;
  assign load_valid_o    = busy_q;
  assign load_trans_id_o = id_q;

endmodule
