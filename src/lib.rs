//! Umbrella crate for the AutoSVA reproduction workspace.
//!
//! This crate re-exports the member crates so that the workspace-level
//! examples and integration tests can refer to every subsystem through a
//! single dependency.  Library users should depend on the individual crates
//! ([`autosva`], [`svparse`], [`autosva_formal`], [`autosva_designs`])
//! directly.

pub use autosva;
pub use autosva_designs;
pub use autosva_formal;
pub use svparse;

pub use autosva_bench;
