//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so this crate implements the
//! strategy-combinator surface the integration tests under `tests/` use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive` and
//!   `boxed`;
//! * leaf strategies: [`strategy::Just`], integer ranges, `any::<bool>()`,
//!   and `&str` regex-subset patterns (character classes with `{m,n}`
//!   repetition);
//! * tuple strategies (2- and 3-tuples) and the [`prop_oneof!`] union;
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Sampling is deterministic (fixed seed, 64 cases per property) and there is
//! **no shrinking** — a failing case is reported as a plain test panic.  That
//! trades minimal counterexamples for zero dependencies, which is the right
//! trade inside a hermetic build.

#![forbid(unsafe_code)]

/// Number of deterministic cases each `proptest!` property runs.
pub const NUM_CASES: usize = 64;

/// The deterministic RNG threaded through strategy sampling.
pub mod test_runner {
    /// xorshift64* generator with a fixed default seed; every `proptest!`
    /// run samples the same case sequence, which keeps CI reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: if seed == 0 {
                    0x9E37_79B9_7F4A_7C15
                } else {
                    seed
                },
            }
        }

        /// The seed used by the `proptest!` macro.
        pub fn deterministic() -> Self {
            TestRng::new(0x5DEE_CE66_D0F3_3173)
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform value in `[0, bound)` for 128-bit bounds.
        pub fn below_u128(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }
    }
}

/// Strategy trait, combinators and leaf strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    ///
    /// Unlike upstream proptest there is no value tree and no shrinking:
    /// `sample` produces the value directly.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `f` receives the strategy for the
        /// previous level (starting from `self` as the leaf level) and
        /// returns the strategy for the next.  `depth` levels are stacked;
        /// the `desired_size` / `expected_branch_size` hints are accepted for
        /// API compatibility but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut level = self.boxed();
            for _ in 0..depth {
                level = f(level.clone()).boxed();
            }
            level
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives — built by [`prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `arms`; sampling picks one arm uniformly.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u128;
                    self.start + rng.below_u128(width) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, u128, usize);

    impl<A, B> Strategy for (A, B)
    where
        A: Strategy,
        B: Strategy,
    {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A, B, C> Strategy for (A, B, C)
    where
        A: Strategy,
        B: Strategy,
        C: Strategy,
    {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A, B, C, D> Strategy for (A, B, C, D)
    where
        A: Strategy,
        B: Strategy,
        C: Strategy,
        D: Strategy,
    {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }

    /// `&str` strategies are regex-subset patterns: a sequence of atoms,
    /// where an atom is a character class `[...]` (literal chars and `a-z`
    /// ranges) or a literal character, optionally followed by `{n}` or
    /// `{m,n}` repetition.  This covers the patterns used in this workspace's
    /// tests; unsupported syntax panics loudly rather than mis-generating.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom into the set of characters it can produce.
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed character class in `{pattern}`"))
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j], chars[j + 2]);
                            assert!(lo <= hi, "bad range `{lo}-{hi}` in `{pattern}`");
                            set.extend((lo..=hi).filter(|c| c.is_ascii()));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape in `{pattern}`");
                    let c = chars[i + 1];
                    i += 2;
                    vec![c]
                }
                c if c == '{' || c == '}' || c == '*' || c == '+' || c == '?' || c == '|' => {
                    panic!("unsupported regex syntax `{c}` in pattern `{pattern}`")
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            assert!(!alphabet.is_empty(), "empty character class in `{pattern}`");

            // Optional {n} or {m,n} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed repetition in `{pattern}`"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("repetition lower bound"),
                        n.trim().parse::<usize>().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "bad repetition bounds in `{pattern}`");

            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                let pick = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[pick]);
            }
        }
        out
    }

    /// Strategy for "any value of `T`" — see [`crate::arbitrary::Arbitrary`].
    pub fn any<T: crate::arbitrary::Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// The `Arbitrary` trait backing `any::<T>()`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical strategy for `bool`: a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! arbitrary_uint {
        ($($ty:ty => $name:ident),*) => {$(
            /// Canonical strategy for the corresponding unsigned integer.
            #[derive(Debug, Clone, Copy)]
            pub struct $name;

            impl Strategy for $name {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }

            impl Arbitrary for $ty {
                type Strategy = $name;
                fn arbitrary() -> $name {
                    $name
                }
            }
        )*};
    }

    arbitrary_uint!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64);
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests.  Each `fn name(binding in strategy,
/// ...) { body }` becomes a `#[test]` that samples every strategy
/// [`NUM_CASES`] times and runs the body.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __proptest_rng = $crate::test_runner::TestRng::deterministic();
            for __proptest_case in 0..$crate::NUM_CASES {
                let _ = __proptest_case;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
    )*};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property (plain `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` — no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` — no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
