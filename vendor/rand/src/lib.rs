//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! workspace vendors the minimal surface it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and the [`Rng`] helpers the
//! simulator calls.  The generator is a SplitMix64-initialised
//! xorshift64*, which is more than adequate for constrained-random stimulus
//! (it is *not* cryptographic, and neither is the upstream `StdRng` contract
//! we rely on here: deterministic streams from a fixed seed).

#![forbid(unsafe_code)]

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value helpers, implemented on top of a raw `u64`
/// stream exactly as the upstream crate does.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 bits of the stream give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Returns a uniformly distributed value in `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        let width = range.end - range.start;
        assert!(width > 0, "cannot sample an empty range");
        range.start + self.next_u64() % width
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xorshift64* generator, the stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scrambles the seed so that small seeds (0, 1, ...)
            // do not yield correlated streams.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng {
                state: if z == 0 { 0x4D59_5DF4_D0F3_3173 } else { z },
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn same_seed_same_stream() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn gen_bool_is_roughly_fair() {
            let mut rng = StdRng::seed_from_u64(7);
            let trues = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
            assert!((4_500..=5_500).contains(&trues), "trues = {trues}");
        }
    }
}
