//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The workspace builds without network access, so this crate implements the
//! small slice of criterion's API that the benches under
//! `crates/bench/benches/` use: `Criterion::benchmark_group`, group
//! configuration (`sample_size`, `measurement_time`, `warm_up_time`),
//! `bench_function` with a [`Bencher`], and the `criterion_group!` /
//! `criterion_main!` macros.  Timings are measured with `std::time::Instant`
//! and reported as min / mean wall time per iteration — no statistics,
//! no plots, but the same shape of output loop so the benches keep running
//! and stay honest about relative cost.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        run_one(name, sample_size, measurement_time, routine);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the stand-in does a single warm-up
    /// iteration regardless.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `name` within this group.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.measurement_time, routine);
        self
    }

    /// Ends the group (output is flushed eagerly, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F>(name: &str, sample_size: usize, measurement_time: Duration, mut routine: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        measurement_time,
    };
    routine(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name:<28} (no samples)");
        return;
    }
    let min = *bencher.samples.iter().min().unwrap();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "  {name:<28} min {min:>10.2?}   mean {mean:>10.2?}   ({} samples)",
        bencher.samples.len()
    );
}

/// Timer handed to the closure passed to `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting up to the configured number of samples or
    /// until the measurement-time budget is spent, whichever comes first.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warm-up iteration.
        std::hint::black_box(routine());
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// Re-export so callers can use `criterion::black_box` like upstream.
pub use std::hint::black_box;

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
